package tlm1_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/gatepower"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tlm1"
)

func bench() (*sim.Kernel, *tlm1.Bus) {
	k := sim.New(0)
	b := tlm1.New(k, ecbus.MustMap(
		mem.NewRAM("fast", 0, 0x1000, 0, 0),
		mem.NewRAM("slow", 0x10000, 0x1000, 1, 2),
	))
	return k, b
}

func single(id uint64, kind ecbus.Kind, addr uint64, w ecbus.Width, data uint32) *ecbus.Transaction {
	tr, err := ecbus.NewSingle(id, kind, addr, w, data)
	if err != nil {
		panic(err)
	}
	return tr
}

func TestAccessStateSequence(t *testing.T) {
	k, b := bench()
	tr := single(1, ecbus.Read, 0x10000, ecbus.W32, 0) // slow: AW=1, RW=2
	var states []ecbus.BusState
	k.At(sim.Rising, "m", func(uint64) {
		if len(states) == 0 || !states[len(states)-1].Done() {
			states = append(states, b.Access(tr))
		}
	})
	k.Run(12)
	// request, then wait while in progress, then ok.
	if states[0] != ecbus.StateRequest {
		t.Fatalf("first state %v, want request", states[0])
	}
	last := states[len(states)-1]
	if last != ecbus.StateOK {
		t.Fatalf("final state %v, want ok", last)
	}
	waits := 0
	for _, s := range states[1 : len(states)-1] {
		if s != ecbus.StateWait {
			t.Fatalf("middle state %v, want wait", s)
		}
		waits++
	}
	if waits == 0 {
		t.Fatal("no wait states observed for the slow slave")
	}
}

func TestSeveralRequestsStartableInOneCycle(t *testing.T) {
	// The paper: "By using these states it is possible to start several
	// bus requests during one cycle."
	k, b := bench()
	var trs []*ecbus.Transaction
	for i := 0; i < 3; i++ {
		trs = append(trs, single(uint64(i+1), ecbus.Read, uint64(4*i), ecbus.W32, 0))
	}
	accepted := 0
	k.At(sim.Rising, "m", func(c uint64) {
		if c != 0 {
			return
		}
		for _, tr := range trs {
			if b.Access(tr) == ecbus.StateRequest {
				accepted++
			}
		}
	})
	k.Step()
	if accepted != 3 {
		t.Fatalf("accepted %d requests in one cycle, want 3", accepted)
	}
}

func TestFinishedRequestPickedUpByNextCall(t *testing.T) {
	k, b := bench()
	tr := single(1, ecbus.Read, 0x10, ecbus.W32, 0)
	core.RunScript(k, b, []core.Item{{Tr: tr}}, 100)
	if !tr.Done {
		t.Fatal("not done")
	}
	if st := b.Access(tr); st != ecbus.StateOK {
		t.Fatalf("poll after completion = %v, want ok", st)
	}
}

func TestOutstandingLimit(t *testing.T) {
	k, b := bench()
	var sts []ecbus.BusState
	k.At(sim.Rising, "m", func(c uint64) {
		if c != 0 {
			return
		}
		for i := 0; i < 5; i++ {
			tr := single(uint64(i+1), ecbus.Write, 0x10000+uint64(4*i), ecbus.W32, 1)
			sts = append(sts, b.Access(tr))
		}
	})
	k.Step()
	for i := 0; i < 4; i++ {
		if sts[i] != ecbus.StateRequest {
			t.Fatalf("request %d state %v", i, sts[i])
		}
	}
	if sts[4] != ecbus.StateWait {
		t.Fatalf("fifth write accepted beyond MaxOutstanding: %v", sts[4])
	}
	if b.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", b.Stats().Rejected)
	}
}

func TestErrorReturnsStateError(t *testing.T) {
	k, b := bench()
	tr := single(1, ecbus.Read, 0x5000, ecbus.W32, 0) // decode hole
	m, _ := core.RunScript(k, b, []core.Item{{Tr: tr}}, 100)
	if m.Errors() != 1 || !tr.Err {
		t.Fatal("decode miss not reported as error")
	}
	if st := b.Access(tr); st != ecbus.StateError {
		t.Fatalf("poll = %v, want error", st)
	}
}

func TestPowerModelCycleProfile(t *testing.T) {
	table := gatepower.NewEstimator(gatepower.DefaultConfig()).Char()
	k, b := bench()
	b.AttachPower(tlm1.NewPowerModel(table))
	tr := single(1, ecbus.Write, 0x10020, ecbus.W32, 0xFFFFFFFF)
	m := core.NewScriptMaster(k, b, []core.Item{{Tr: tr}})

	var profile []float64
	k.At(sim.Post, "profile", func(uint64) {
		profile = append(profile, b.Power().EnergyLastCycle())
	})
	k.RunUntil(100, m.Done)

	// Cycle 0 must dissipate energy (address bus leaves reset state).
	if profile[0] <= 0 {
		t.Fatal("no energy in first active cycle")
	}
	// Total equals the sum of the per-cycle profile.
	var sum float64
	for _, e := range profile {
		sum += e
	}
	if d := sum - b.Power().TotalEnergy(); d > 1e-18 || d < -1e-18 {
		t.Fatalf("profile sum %.3e != total %.3e", sum, b.Power().TotalEnergy())
	}
}

func TestPowerDisabledByDefault(t *testing.T) {
	k, b := bench()
	if b.Power() != nil {
		t.Fatal("power model attached by default")
	}
	tr := single(1, ecbus.Read, 0, ecbus.W32, 0)
	m, _ := core.RunScript(k, b, []core.Item{{Tr: tr}}, 100)
	if !m.Done() {
		t.Fatal("run without power model failed")
	}
}

func TestIdleBusNoEnergyAfterSettle(t *testing.T) {
	table := gatepower.NewEstimator(gatepower.DefaultConfig()).Char()
	k, b := bench()
	b.AttachPower(tlm1.NewPowerModel(table))
	tr := single(1, ecbus.Read, 0x40, ecbus.W32, 0)
	m, _ := core.RunScript(k, b, []core.Item{{Tr: tr}}, 100)
	if !m.Done() {
		t.Fatal("run failed")
	}
	b.Power().EnergySince()
	k.Run(10) // idle cycles
	if e := b.Power().EnergySince(); e != 0 {
		t.Fatalf("idle bus dissipated %.3e J at the interface", e)
	}
}

func TestStatsCounters(t *testing.T) {
	k, b := bench()
	items := []core.Item{
		{Tr: single(1, ecbus.Read, 0x0, ecbus.W32, 0)},
		{Tr: single(2, ecbus.Write, 0x4, ecbus.W32, 9)},
	}
	core.RunScript(k, b, items, 100)
	st := b.Stats()
	if st.Accepted != 2 || st.Completed != 2 || st.DataBeats != 2 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if !b.Idle() {
		t.Fatal("bus not idle after completion")
	}
}
