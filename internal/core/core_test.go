package core_test

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/mem"
	"repro/internal/rtlbus"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
)

func TestScriptMasterSerialized(t *testing.T) {
	// Use the fully pipelined corpus: the verification corpus's issue
	// gaps make serialization free.
	items := core.PerfCorpus(lay, 120)

	k := sim.New(0)
	b := rtlbus.New(k, testMap())
	m := core.NewScriptMaster(k, b, core.CloneItems(items)).Serialized()
	n, _ := k.RunUntil(1_000_000, m.Done)
	if !m.Done() {
		t.Fatal("serialized run did not finish")
	}

	k2 := sim.New(0)
	b2 := rtlbus.New(k2, testMap())
	m2, n2 := core.RunScript(k2, b2, core.CloneItems(items), 1_000_000)
	if !m2.Done() || n <= n2 {
		t.Fatalf("serialized (%d cycles) not slower than pipelined (%d)", n, n2)
	}
	// Completion order equals issue order when serialized.
	done := m.Completed()
	for i := 1; i < len(done); i++ {
		if done[i].ID < done[i-1].ID {
			t.Fatal("serialized master completed out of order")
		}
	}
}

func TestScriptMasterNotBeforeRespected(t *testing.T) {
	k := sim.New(0)
	b := rtlbus.New(k, testMap())
	tr1, _ := ecbus.NewSingle(1, ecbus.Read, lay.Fast, ecbus.W32, 0)
	tr2, _ := ecbus.NewSingle(2, ecbus.Read, lay.Fast+4, ecbus.W32, 0)
	m, _ := core.RunScript(k, b, []core.Item{
		{Tr: tr1},
		{Tr: tr2, NotBefore: 20},
	}, 1000)
	if !m.Done() {
		t.Fatal("did not finish")
	}
	if tr2.IssueCycle < 20 {
		t.Fatalf("NotBefore violated: issued at %d", tr2.IssueCycle)
	}
	if tr1.IssueCycle != 0 {
		t.Fatalf("first item delayed: issued at %d", tr1.IssueCycle)
	}
}

func TestScriptMasterProgramOrderAcrossRejection(t *testing.T) {
	// Six writes to the slow slave: the category limit forces
	// rejections, but issue order must be preserved.
	k := sim.New(0)
	b := rtlbus.New(k, testMap())
	var items []core.Item
	for i := 0; i < 6; i++ {
		tr, _ := ecbus.NewSingle(uint64(i+1), ecbus.Write, lay.Slow+uint64(4*i), ecbus.W32, 7)
		items = append(items, core.Item{Tr: tr})
	}
	m, _ := core.RunScript(k, b, items, 10000)
	if !m.Done() || m.Errors() != 0 {
		t.Fatal("run failed")
	}
	for i := 1; i < len(items); i++ {
		if items[i].Tr.IssueCycle < items[i-1].Tr.IssueCycle {
			t.Fatal("program order violated across bus-full rejection")
		}
	}
}

func TestCorporaAreLegal(t *testing.T) {
	check := func(name string, items []core.Item) {
		for i, it := range items {
			if err := it.Tr.Validate(); err != nil {
				// Layer-2 native blocks aside, corpora must be canonical.
				t.Fatalf("%s item %d invalid: %v", name, i, err)
			}
		}
	}
	check("verification", core.VerificationCorpus(lay))
	check("perf", core.PerfCorpus(lay, 500))
	check("char", core.CharCorpus(lay, 500))
	for seed := uint64(1); seed <= 10; seed++ {
		check("random", core.RandomCorpus(seed, 500, lay))
	}
}

func TestRandomCorpusDeterministic(t *testing.T) {
	a := core.RandomCorpus(42, 100, lay)
	b := core.RandomCorpus(42, 100, lay)
	for i := range a {
		if a[i].Tr.String() != b[i].Tr.String() || a[i].NotBefore != b[i].NotBefore {
			t.Fatal("random corpus not reproducible")
		}
	}
}

func TestCloneItemsDeep(t *testing.T) {
	items := core.VerificationCorpus(lay)
	c := core.CloneItems(items)
	c[0].Tr.Data[0] = 0xFFFF
	c[0].Tr.Done = true
	if items[0].Tr.Done || items[0].Tr.Data[0] == 0xFFFF {
		t.Fatal("CloneItems shares state")
	}
}

// TestErrorAgreementAcrossLayers injects decode misses and
// rights violations: all three layers must agree on which transactions
// fail.
func TestErrorAgreementAcrossLayers(t *testing.T) {
	mkMap := func() *ecbus.Map {
		rom := mem.NewROM("rom", 0x20000, 0x1000, 0, 0)
		return ecbus.MustMap(
			mem.NewRAM("fast", lay.Fast, 0x1000, 0, 0),
			mem.NewRAM("slow", lay.Slow, 0x1000, 1, 2),
			rom,
		)
	}
	build := func() []core.Item {
		var items []core.Item
		add := func(id uint64, kind ecbus.Kind, addr uint64) {
			tr, err := ecbus.NewSingle(id, kind, addr, ecbus.W32, 0xAB)
			if err != nil {
				t.Fatal(err)
			}
			items = append(items, core.Item{Tr: tr})
		}
		add(1, ecbus.Read, lay.Fast)       // ok
		add(2, ecbus.Read, 0x5000)         // decode miss
		add(3, ecbus.Write, 0x20010)       // ROM write: rights violation
		add(4, ecbus.Read, 0x20010)        // ROM read: ok
		add(5, ecbus.Write, lay.Slow+4)    // ok
		add(6, ecbus.Fetch, 0x5000)        // miss on instruction side
		add(7, ecbus.Read, lay.Fast+0xFFC) // last word: ok
		return items
	}
	type outcome []bool
	run := func(layer int) outcome {
		k := sim.New(0)
		var bus core.Initiator
		switch layer {
		case 0:
			bus = rtlbus.New(k, mkMap())
		case 1:
			bus = tlm1.New(k, mkMap())
		default:
			bus = tlm2.New(k, mkMap())
		}
		items := build()
		m, _ := core.RunScript(k, bus, items, 10000)
		if !m.Done() {
			t.Fatalf("layer %d error run hung", layer)
		}
		var out outcome
		for _, it := range items {
			out = append(out, it.Tr.Err)
		}
		return out
	}
	want := outcome{false, true, true, false, false, true, false}
	for layer := 0; layer <= 2; layer++ {
		got := run(layer)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("layer %d tx %d: err=%v, want %v", layer, i+1, got[i], want[i])
			}
		}
	}
}

// TestEEPROMDynamicWaitLayerBehaviour documents the layers' divergence
// on state-dependent wait states: layers 0/1 sample at address-phase
// start (identical), layer 2 at request creation (may differ in either
// direction) — but all layers agree on data and final state.
func TestEEPROMDynamicWaitLayerBehaviour(t *testing.T) {
	build := func() (*sim.Kernel, *ecbus.Map, *mem.EEPROM) {
		k := sim.New(0)
		ee := mem.NewEEPROM("ee", 0, 0x8000, k)
		return k, ecbus.MustMap(ee), ee
	}
	items := func() []core.Item {
		w, _ := ecbus.NewSingle(1, ecbus.Write, 0x100, ecbus.W32, 0x42)
		r, _ := ecbus.NewSingle(2, ecbus.Read, 0x100, ecbus.W32, 0)
		return []core.Item{{Tr: w}, {Tr: r, NotBefore: 6}}
	}
	type res struct {
		cycles uint64
		data   uint32
	}
	run := func(layer int) res {
		k, m, _ := build()
		var bus core.Initiator
		switch layer {
		case 0:
			bus = rtlbus.New(k, m)
		case 1:
			bus = tlm1.New(k, m)
		default:
			bus = tlm2.New(k, m)
		}
		its := items()
		sm, n := core.RunScript(k, bus, its, 100000)
		if !sm.Done() || sm.Errors() != 0 {
			t.Fatalf("layer %d EEPROM run failed", layer)
		}
		return res{cycles: n, data: its[1].Tr.Data[0]}
	}
	r0, r1, r2 := run(0), run(1), run(2)
	if r0.data != 0x42 || r1.data != 0x42 || r2.data != 0x42 {
		t.Fatalf("data disagreement: %#x %#x %#x", r0.data, r1.data, r2.data)
	}
	if r1.cycles != r0.cycles {
		t.Fatalf("layer 1 cycles %d != layer 0 %d with dynamic waits", r1.cycles, r0.cycles)
	}
	// Layer 2's stale sampling makes its estimate differ; here the read
	// is created while programming is in progress, so it books the full
	// remaining stall — document the direction for this scenario.
	if r2.cycles == r0.cycles {
		t.Logf("layer 2 happened to match (%d cycles)", r2.cycles)
	}
}

// TestAblationCharacterizationCorpus: characterizing on the evaluation
// corpus itself removes the transition-mix error, leaving only the
// structural scope gap — the layer-1 error shrinks toward it but must
// remain negative.
func TestAblationCharacterizationCorpus(t *testing.T) {
	items := core.VerificationCorpus(lay)

	gate, est := gateEnergy(t, core.CloneItems(items))
	selfTable := est.Char()

	k := sim.New(0)
	b := tlm1.New(k, testMap()).AttachPower(tlm1.NewPowerModel(selfTable))
	m, _ := core.RunScript(k, b, core.CloneItems(items), 1_000_000)
	if !m.Done() {
		t.Fatal("self-characterized run failed")
	}
	selfRatio := b.Power().TotalEnergy() / gate

	crossTable := characterize(t) // characterization corpus, as in the paper
	k2 := sim.New(0)
	b2 := tlm1.New(k2, testMap()).AttachPower(tlm1.NewPowerModel(crossTable))
	m2, _ := core.RunScript(k2, b2, core.CloneItems(items), 1_000_000)
	if !m2.Done() {
		t.Fatal("cross-characterized run failed")
	}
	crossRatio := b2.Power().TotalEnergy() / gate

	t.Logf("L1/gate ratio: self-characterized %.4f, cross-characterized %.4f", selfRatio, crossRatio)
	// The structural scope gap (decoder, clock, leakage outside the
	// layer-1 model) keeps the ratio below 1 regardless of which corpus
	// characterized the table...
	if selfRatio >= 1.0 || crossRatio >= 1.0 {
		t.Errorf("scope gap vanished: self %.3f, cross %.3f", selfRatio, crossRatio)
	}
	// ...while the transition-mix component moves the estimate when the
	// characterization corpus changes (in either direction).
	if selfRatio == crossRatio {
		t.Error("characterization corpus choice had no effect; mix component missing")
	}
}

// Property: at every layer, a write followed by a read of the same
// address returns the written value (read-your-writes on the single
// in-order bus).
func TestReadYourWritesProperty(t *testing.T) {
	f := func(off uint16, val uint32, layerSel uint8) bool {
		addr := lay.Fast + uint64(off&0x0FFC)
		layer := int(layerSel % 3)
		k := sim.New(0)
		var bus core.Initiator
		switch layer {
		case 0:
			bus = rtlbus.New(k, testMap())
		case 1:
			bus = tlm1.New(k, testMap())
		default:
			bus = tlm2.New(k, testMap())
		}
		w, _ := ecbus.NewSingle(1, ecbus.Write, addr, ecbus.W32, val)
		r, _ := ecbus.NewSingle(2, ecbus.Read, addr, ecbus.W32, 0)
		m, _ := core.RunScript(k, bus, []core.Item{{Tr: w}, {Tr: r}}, 10000)
		return m.Done() && !r.Err && r.Data[0] == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
