package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/gatepower"
	"repro/internal/rtlbus"
	"repro/internal/sim"
	"repro/internal/tlm1"
)

// TestTL1AdapterWireTrajectory is the strongest form of the paper's
// "transaction level to RTL adapter" claim: the layer-1 power model's
// reconstructed interface signals equal the layer-0 wires on every
// cycle, for every interface signal, over random corpora.
func TestTL1AdapterWireTrajectory(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		items := core.RandomCorpus(seed, 200, lay)

		// Layer 0: record the wire bundle per cycle.
		k0 := sim.New(0)
		b0 := rtlbus.New(k0, testMap())
		var wires0 []ecbus.Bundle
		k0.At(sim.Post, "rec", func(uint64) { wires0 = append(wires0, *b0.Wires()) })
		m0, _ := core.RunScript(k0, b0, core.CloneItems(items), 1_000_000)
		if !m0.Done() {
			t.Fatal("layer-0 run hung")
		}

		// Layer 1: record the adapter's reconstruction per cycle.
		k1 := sim.New(0)
		b1 := tlm1.New(k1, testMap()).AttachPower(tlm1.NewPowerModel(gatepower.CharTable{}))
		var wires1 []ecbus.Bundle
		k1.At(sim.Post, "rec", func(uint64) { wires1 = append(wires1, b1.Power().Bundle()) })
		m1, _ := core.RunScript(k1, b1, core.CloneItems(items), 1_000_000)
		if !m1.Done() {
			t.Fatal("layer-1 run hung")
		}

		if len(wires0) != len(wires1) {
			t.Fatalf("seed %d: %d vs %d recorded cycles", seed, len(wires0), len(wires1))
		}
		for c := range wires0 {
			for id := ecbus.SignalID(0); id < ecbus.SigSel; id++ {
				if wires0[c].Get(id) != wires1[c].Get(id) {
					t.Fatalf("seed %d cycle %d: %v = %#x at layer 0, %#x reconstructed",
						seed, c, id, wires0[c].Get(id), wires1[c].Get(id))
				}
			}
		}
	}
}

// TestTL1AdapterWireTrajectoryWithErrors repeats the trajectory check on
// a corpus that includes decode misses and rights violations, covering
// the error strobes.
func TestTL1AdapterWireTrajectoryWithErrors(t *testing.T) {
	var items []core.Item
	add := func(id uint64, kind ecbus.Kind, addr uint64, when uint64) {
		tr, err := ecbus.NewSingle(id, kind, addr, ecbus.W32, uint32(id)*3)
		if err != nil {
			t.Fatal(err)
		}
		items = append(items, core.Item{Tr: tr, NotBefore: when})
	}
	add(1, ecbus.Read, lay.Fast, 0)
	add(2, ecbus.Read, 0x5000, 0)  // decode miss (read error strobe)
	add(3, ecbus.Write, 0x5000, 4) // decode miss (write error strobe)
	add(4, ecbus.Write, lay.Slow, 4)
	add(5, ecbus.Fetch, lay.Fast+0x40, 9)

	k0 := sim.New(0)
	b0 := rtlbus.New(k0, testMap())
	var wires0 []ecbus.Bundle
	k0.At(sim.Post, "rec", func(uint64) { wires0 = append(wires0, *b0.Wires()) })
	core.RunScript(k0, b0, core.CloneItems(items), 10000)

	k1 := sim.New(0)
	b1 := tlm1.New(k1, testMap()).AttachPower(tlm1.NewPowerModel(gatepower.CharTable{}))
	var wires1 []ecbus.Bundle
	k1.At(sim.Post, "rec", func(uint64) { wires1 = append(wires1, b1.Power().Bundle()) })
	core.RunScript(k1, b1, core.CloneItems(items), 10000)

	if len(wires0) != len(wires1) {
		t.Fatalf("%d vs %d cycles", len(wires0), len(wires1))
	}
	sawErrStrobe := false
	for c := range wires0 {
		if wires0[c].Bool(ecbus.SigRBErr) || wires0[c].Bool(ecbus.SigWBErr) {
			sawErrStrobe = true
		}
		for id := ecbus.SignalID(0); id < ecbus.SigSel; id++ {
			if wires0[c].Get(id) != wires1[c].Get(id) {
				t.Fatalf("cycle %d: %v mismatch (%#x vs %#x)", c, id, wires0[c].Get(id), wires1[c].Get(id))
			}
		}
	}
	if !sawErrStrobe {
		t.Fatal("corpus did not exercise the error strobes")
	}
}
