package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/gatepower"
	"repro/internal/mem"
	"repro/internal/rtlbus"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
)

// The standard two-slave layout used by the accuracy experiments: a
// zero-wait RAM and a waited RAM, identical across layers.
var lay = core.Layout{Fast: 0, Slow: 0x10000}

func testMap() *ecbus.Map {
	return ecbus.MustMap(
		mem.NewRAM("fast", lay.Fast, 0x1000, 0, 0),
		mem.NewRAM("slow", lay.Slow, 0x1000, 1, 2),
	)
}

type runResult struct {
	cycles uint64
	items  []core.Item
	master *core.ScriptMaster
}

func runRTL(t *testing.T, items []core.Item) runResult {
	t.Helper()
	k := sim.New(0)
	b := rtlbus.New(k, testMap())
	m, n := core.RunScript(k, b, items, 1_000_000)
	if !m.Done() {
		t.Fatal("rtl run did not finish")
	}
	return runResult{cycles: n, items: items, master: m}
}

func runTL1(t *testing.T, items []core.Item) runResult {
	t.Helper()
	k := sim.New(0)
	b := tlm1.New(k, testMap())
	m, n := core.RunScript(k, b, items, 1_000_000)
	if !m.Done() {
		t.Fatal("tl1 run did not finish")
	}
	return runResult{cycles: n, items: items, master: m}
}

func runTL2(t *testing.T, items []core.Item) runResult {
	t.Helper()
	k := sim.New(0)
	b := tlm2.New(k, testMap())
	m, n := core.RunScript(k, b, items, 1_000_000)
	if !m.Done() {
		t.Fatal("tl2 run did not finish")
	}
	return runResult{cycles: n, items: items, master: m}
}

// TestLayer1CycleEquivalence is the paper's layer-1 accuracy claim
// (Table 1: 0% timing error): the layer-1 model is cycle-identical to
// the layer-0 reference, transaction by transaction.
func TestLayer1CycleEquivalence(t *testing.T) {
	corpora := map[string][]core.Item{
		"verification": core.VerificationCorpus(lay),
		"perf":         core.PerfCorpus(lay, 200),
	}
	for seed := uint64(1); seed <= 20; seed++ {
		corpora["random"] = core.RandomCorpus(seed, 250, lay)
		for name, items := range corpora {
			rtl := runRTL(t, core.CloneItems(items))
			tl1 := runTL1(t, core.CloneItems(items))
			if rtl.cycles != tl1.cycles {
				t.Fatalf("%s (seed %d): rtl %d cycles, tl1 %d cycles",
					name, seed, rtl.cycles, tl1.cycles)
			}
			for i := range rtl.items {
				a, b := rtl.items[i].Tr, tl1.items[i].Tr
				if a.AddrCycle != b.AddrCycle || a.DataCycle != b.DataCycle || a.Err != b.Err {
					t.Fatalf("%s (seed %d) tx %d: rtl addr/data/err=%d/%d/%v tl1=%d/%d/%v",
						name, seed, i, a.AddrCycle, a.DataCycle, a.Err,
						b.AddrCycle, b.DataCycle, b.Err)
				}
				for w := range a.Data {
					if a.Data[w] != b.Data[w] {
						t.Fatalf("%s tx %d word %d: data %#x vs %#x", name, i, w, a.Data[w], b.Data[w])
					}
				}
			}
		}
	}
}

// TestLayer2TimingError reproduces the Table-1 shape for the layer-2
// model: slightly slow (positive error), bounded.
func TestLayer2TimingError(t *testing.T) {
	items := core.VerificationCorpus(lay)
	rtl := runRTL(t, core.CloneItems(items))
	tl2 := runTL2(t, core.CloneItems(items))
	err := float64(tl2.cycles)/float64(rtl.cycles) - 1
	t.Logf("layer-2 timing error on verification corpus: %+.2f%% (rtl %d, tl2 %d cycles)",
		100*err, rtl.cycles, tl2.cycles)
	if err <= 0 {
		t.Fatalf("layer-2 should be conservative (positive error), got %+.2f%%", 100*err)
	}
	if err > 0.015 {
		t.Fatalf("layer-2 timing error %+.2f%% exceeds 1.5%% band", 100*err)
	}
}

// TestLayer2TimingErrorRandom keeps the layer-2 error inside the band on
// random mixed corpora and checks per-transaction conservatism.
func TestLayer2TimingErrorRandom(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		items := core.RandomCorpus(seed, 300, lay)
		rtl := runRTL(t, core.CloneItems(items))
		tl2 := runTL2(t, core.CloneItems(items))
		if tl2.cycles < rtl.cycles {
			t.Fatalf("seed %d: tl2 (%d) faster than rtl (%d)", seed, tl2.cycles, rtl.cycles)
		}
		err := float64(tl2.cycles)/float64(rtl.cycles) - 1
		if err > 0.03 {
			t.Fatalf("seed %d: timing error %+.2f%% out of band", seed, 100*err)
		}
		for i := range rtl.items {
			if tl2.items[i].Tr.DataCycle < rtl.items[i].Tr.DataCycle {
				t.Fatalf("seed %d tx %d: tl2 completed earlier (%d) than rtl (%d)",
					seed, i, tl2.items[i].Tr.DataCycle, rtl.items[i].Tr.DataCycle)
			}
		}
	}
}

// characterize runs the characterization corpus through the layer-0
// model under the gate-level estimator and extracts the per-transition
// table (paper §3.3, "Power Characterization").
func characterize(t *testing.T) gatepower.CharTable {
	t.Helper()
	k := sim.New(0)
	b := rtlbus.New(k, testMap())
	est := gatepower.NewEstimator(gatepower.DefaultConfig())
	k.At(sim.Post, "gatepower", func(uint64) { est.Observe(b.Wires()) })
	m, _ := core.RunScript(k, b, core.CharCorpus(lay, 400), 1_000_000)
	if !m.Done() {
		t.Fatal("characterization run did not finish")
	}
	return est.Char()
}

// gateEnergy runs items through layer 0 under the gate-level estimator.
func gateEnergy(t *testing.T, items []core.Item) (float64, *gatepower.Estimator) {
	t.Helper()
	k := sim.New(0)
	b := rtlbus.New(k, testMap())
	est := gatepower.NewEstimator(gatepower.DefaultConfig())
	k.At(sim.Post, "gatepower", func(uint64) { est.Observe(b.Wires()) })
	m, _ := core.RunScript(k, b, items, 1_000_000)
	if !m.Done() {
		t.Fatal("gate energy run did not finish")
	}
	return est.TotalEnergy(), est
}

// TestHierarchicalEnergyAccuracy reproduces the Table-2 shape: the
// layer-1 estimate lands below the gate-level reference (paper −7.8%),
// the layer-2 estimate above it (paper +14.7%).
func TestHierarchicalEnergyAccuracy(t *testing.T) {
	table := characterize(t)
	items := core.VerificationCorpus(lay)

	gate, _ := gateEnergy(t, core.CloneItems(items))

	k1 := sim.New(0)
	b1 := tlm1.New(k1, testMap()).AttachPower(tlm1.NewPowerModel(table))
	m1, _ := core.RunScript(k1, b1, core.CloneItems(items), 1_000_000)
	if !m1.Done() {
		t.Fatal("tl1 energy run did not finish")
	}
	e1 := b1.Power().TotalEnergy()

	k2 := sim.New(0)
	b2 := tlm2.New(k2, testMap()).AttachPower(tlm2.NewPowerModel(table))
	m2, _ := core.RunScript(k2, b2, core.CloneItems(items), 1_000_000)
	if !m2.Done() {
		t.Fatal("tl2 energy run did not finish")
	}
	e2 := b2.Power().TotalEnergy()

	r1 := e1 / gate
	r2 := e2 / gate
	t.Logf("energy: gate %.3f pJ, tl1 %.3f pJ (%.1f%%), tl2 %.3f pJ (%.1f%%)",
		gate*1e12, e1*1e12, 100*r1, e2*1e12, 100*r2)

	if r1 < 0.85 || r1 > 0.98 {
		t.Errorf("layer-1 energy ratio %.3f outside [0.85, 0.98] (paper: 0.921)", r1)
	}
	if r2 < 1.05 || r2 > 1.25 {
		t.Errorf("layer-2 energy ratio %.3f outside [1.05, 1.25] (paper: 1.147)", r2)
	}
	if r1 >= r2 {
		t.Errorf("hierarchy inverted: tl1 ratio %.3f >= tl2 ratio %.3f", r1, r2)
	}
}

// TestLayer1TransitionFidelity checks the "TL to RTL adapter" property:
// the layer-1 power model counts exactly the interface transitions the
// layer-0 wires produce.
func TestLayer1TransitionFidelity(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		items := core.RandomCorpus(seed, 200, lay)

		_, est := gateEnergy(t, core.CloneItems(items))
		var gateTrans uint64
		for id := ecbus.SignalID(0); id < ecbus.SigSel; id++ {
			gateTrans += est.SignalStats(id).Transitions()
		}

		k := sim.New(0)
		b := tlm1.New(k, testMap()).AttachPower(tlm1.NewPowerModel(gatepower.CharTable{}))
		m, _ := core.RunScript(k, b, core.CloneItems(items), 1_000_000)
		if !m.Done() {
			t.Fatal("tl1 run did not finish")
		}
		if got := b.Power().Transitions(); got != gateTrans {
			t.Fatalf("seed %d: tl1 counted %d interface transitions, gate level %d",
				seed, got, gateTrans)
		}
	}
}

// TestEnergySinceAccumulates exercises the shared power interface
// semantics: EnergySince drains, TotalEnergy does not.
func TestEnergySinceAccumulates(t *testing.T) {
	table := characterize(t)
	k := sim.New(0)
	b := tlm1.New(k, testMap()).AttachPower(tlm1.NewPowerModel(table))
	items := core.VerificationCorpus(lay)
	m := core.NewScriptMaster(k, b, items)
	var sampled float64
	for !m.Done() {
		k.Step()
		sampled += b.Power().EnergySince()
	}
	total := b.Power().TotalEnergy()
	if total <= 0 {
		t.Fatal("no energy estimated")
	}
	if diff := sampled - total; diff > 1e-18 || diff < -1e-18 {
		t.Fatalf("sampled %.6e J != total %.6e J", sampled, total)
	}
	if b.Power().EnergySince() != 0 {
		t.Fatal("EnergySince did not drain")
	}
}

// TestLayer2SamplingGranularity reproduces the Fig.-6 semantics: between
// two EnergySince samples, only phases that finished in the interval are
// included — a request still in its data phase contributes nothing yet.
func TestLayer2SamplingGranularity(t *testing.T) {
	table := characterize(t)
	k := sim.New(0)
	b := tlm2.New(k, testMap()).AttachPower(tlm2.NewPowerModel(table))

	// One read to the slow slave: addr phase cycles 0..1, data finishes
	// later (2 waits). Sample right after the address phase.
	tr, _ := ecbus.NewSingle(1, ecbus.Read, lay.Slow, ecbus.W32, 0)
	core.NewScriptMaster(k, b, []core.Item{{Tr: tr}})
	k.Run(3) // cycles 0..2: address done (cycle 1), data still counting
	mid := b.Power().EnergySince()
	if mid <= 0 {
		t.Fatal("address-phase energy not booked after phase end")
	}
	addrPh, dataPh := b.Power().Phases()
	if addrPh != 1 || dataPh != 0 {
		t.Fatalf("phases after addr sample: addr=%d data=%d, want 1/0", addrPh, dataPh)
	}
	k.Run(20)
	rest := b.Power().EnergySince()
	if rest <= 0 {
		t.Fatal("data-phase energy missing")
	}
	if _, dataPh = b.Power().Phases(); dataPh != 1 {
		t.Fatalf("data phases = %d, want 1", dataPh)
	}
}
