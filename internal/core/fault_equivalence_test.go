package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/rtlbus"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
)

// faultMap is testMap with every slave behind a fresh injector. RAM-only
// on purpose: EEPROM/Flash busy windows are clock-derived, so their
// stretch inherits layer-2 sampling differences and is excluded from the
// exact-equivalence property.
func faultMap(plan fault.Plan) *ecbus.Map {
	return ecbus.MustMap(
		fault.Wrap(mem.NewRAM("fast", lay.Fast, 0x1000, 0, 0), plan),
		fault.Wrap(mem.NewRAM("slow", lay.Slow, 0x1000, 1, 2), plan),
	)
}

var eqRetry = core.RetryPolicy{MaxRetries: 4, Backoff: 1}

func runFaultLayer(t *testing.T, layer int, items []core.Item, plan fault.Plan, serialized bool) (*core.ScriptMaster, uint64) {
	t.Helper()
	k := sim.New(0)
	var bus core.Initiator
	switch layer {
	case 0:
		bus = rtlbus.New(k, faultMap(plan))
	case 1:
		bus = tlm1.New(k, faultMap(plan))
	default:
		bus = tlm2.New(k, faultMap(plan))
	}
	m := core.NewScriptMaster(k, bus, items)
	m.Retry = eqRetry
	if serialized {
		m.Serialized()
	}
	n, _ := k.RunUntil(1_000_000, m.Done)
	if !m.Done() {
		t.Fatalf("layer-%d fault run did not finish", layer)
	}
	return m, n
}

// mustSingle / mustBurst build corpus entries.
func mustSingle(t *testing.T, id uint64, kind ecbus.Kind, addr uint64, data uint32) core.Item {
	t.Helper()
	tr, err := ecbus.NewSingle(id, kind, addr, ecbus.W32, data)
	if err != nil {
		t.Fatal(err)
	}
	return core.Item{Tr: tr}
}

func mustBurst(t *testing.T, id uint64, kind ecbus.Kind, addr uint64, data []uint32) core.Item {
	t.Helper()
	tr, err := ecbus.NewBurst(id, kind, addr, data)
	if err != nil {
		t.Fatal(err)
	}
	return core.Item{Tr: tr}
}

// disjointCorpus touches every word at most once across the whole run
// (each transaction owns its address range), so the per-word access
// ordinal — the injector's decision key — is layer-invariant even under
// pipelined, out-of-order completion across directions.
func disjointCorpus(t *testing.T) []core.Item {
	t.Helper()
	var items []core.Item
	id := uint64(1)
	addr := lay.Fast
	step := func() uint64 { a := addr; addr += 4; return a }
	for i := 0; i < 24; i++ {
		switch i % 4 {
		case 0:
			items = append(items, mustSingle(t, id, ecbus.Read, step(), 0))
		case 1:
			items = append(items, mustSingle(t, id, ecbus.Write, step(), uint32(i)*0x11))
		case 2:
			items = append(items, mustSingle(t, id, ecbus.Fetch, step(), 0))
		default:
			a := (addr + ecbus.BurstLen*4) &^ (ecbus.BurstLen*4 - 1)
			addr = a + ecbus.BurstLen*4
			kind := ecbus.Read
			var data []uint32
			if i%8 == 3 {
				kind = ecbus.Write
				data = []uint32{1, 2, 3, 4}
			}
			items = append(items, mustBurst(t, id, kind, a, data))
		}
		id++
	}
	// A second tranche on the slow (waited) slave.
	addr = lay.Slow
	for i := 0; i < 12; i++ {
		if i%3 == 2 {
			a := (addr + ecbus.BurstLen*4) &^ (ecbus.BurstLen*4 - 1)
			addr = a + ecbus.BurstLen*4
			items = append(items, mustBurst(t, id, ecbus.Read, a, nil))
		} else {
			kind := ecbus.Read
			if i%3 == 1 {
				kind = ecbus.Write
			}
			items = append(items, mustSingle(t, id, kind, step(), uint32(i)))
		}
		id++
	}
	return items
}

// sharedCorpus hammers a handful of words repeatedly — the ordinal-
// sensitive case. Layer-invariant only under a serialized master, which
// fixes the global access order.
func sharedCorpus(t *testing.T) []core.Item {
	t.Helper()
	var items []core.Item
	id := uint64(1)
	for rep := 0; rep < 6; rep++ {
		items = append(items,
			mustSingle(t, id, ecbus.Write, lay.Fast+0x40, uint32(rep)),
			mustSingle(t, id+1, ecbus.Read, lay.Fast+0x40, 0),
			mustSingle(t, id+2, ecbus.Read, lay.Slow+0x80, 0),
			mustBurst(t, id+3, ecbus.Write, lay.Slow+0x100, []uint32{9, 8, 7, uint32(rep)}),
			mustBurst(t, id+4, ecbus.Read, lay.Slow+0x100, nil),
		)
		id += 5
	}
	return items
}

// scriptedFor builds an exact-window plan targeting addresses the corpus
// actually touches: a read window that clears after two retries, a write
// window that clears after one, and an unbounded read window that
// exhausts the retry budget and must abort identically at every layer.
func scriptedFor(items []core.Item) fault.Plan {
	var readA, writeA, abortA uint64
	var haveRead, haveWrite bool
	for _, it := range items {
		tr := it.Tr
		if tr.Burst {
			continue
		}
		switch {
		case tr.Kind == ecbus.Read && !haveRead:
			readA, haveRead = tr.Addr, true
		case tr.Kind == ecbus.Write && !haveWrite:
			writeA, haveWrite = tr.Addr, true
		case tr.Kind == ecbus.Read:
			abortA = tr.Addr // keep the last read: distinct from readA
		}
	}
	return fault.Plan{
		CorruptMask: 0xA5A5_0000,
		Scripted: []fault.ScriptedFault{
			{Op: fault.OpRead, Addr: readA, After: 0, Count: 2},
			{Op: fault.OpWrite, Addr: writeA, After: 0, Count: 1},
			{Op: fault.OpRead, Addr: abortA, After: 0, Count: 0},
		},
	}
}

// equivalencePlans are the seeded-random fault plans the property is
// checked under; the scripted plan is built per corpus by scriptedFor.
func equivalencePlans(t *testing.T) map[string]fault.Plan {
	t.Helper()
	flaky, _ := fault.Named("flaky")
	grind, _ := fault.Named("grind")
	return map[string]fault.Plan{"flaky": flaky, "grind": grind}
}

// checkOutcomes asserts the acceptance criterion: identical
// per-transaction outcomes (OK vs Error) and retry counts across layers.
func checkOutcomes(t *testing.T, tag string, ref, got []core.Item) {
	t.Helper()
	anyErr, anyRetry := false, false
	for i := range ref {
		a, b := ref[i].Tr, got[i].Tr
		if a.Err != b.Err || a.Retries != b.Retries {
			t.Fatalf("%s tx %d (%v): outcome err=%v retries=%d, reference err=%v retries=%d",
				tag, i, b, b.Err, b.Retries, a.Err, a.Retries)
		}
		if !a.Err {
			for w := range a.Data {
				if a.Data[w] != b.Data[w] {
					t.Fatalf("%s tx %d word %d: data %#x vs reference %#x",
						tag, i, w, b.Data[w], a.Data[w])
				}
			}
		}
		anyErr = anyErr || a.Err
		anyRetry = anyRetry || a.Retries > 0
	}
	if !anyErr && !anyRetry {
		t.Fatalf("%s: plan injected nothing — the property was not exercised", tag)
	}
}

// TestCrossLayerFaultEquivalence is the PR's acceptance criterion: under
// the same fault plan, the layer-0, layer-1 and layer-2 models report
// identical per-transaction outcomes and retry counts, and the layer-2
// timing stays conservative within its tolerance band.
func TestCrossLayerFaultEquivalence(t *testing.T) {
	corpora := map[string]struct {
		items      func(*testing.T) []core.Item
		serialized bool
	}{
		"serialized-shared":  {sharedCorpus, true},
		"pipelined-disjoint": {disjointCorpus, false},
	}
	plans := equivalencePlans(t)
	for corpusName, c := range corpora {
		plans["scripted"] = scriptedFor(c.items(t))
		for planName, plan := range plans {
			tag := planName + "/" + corpusName
			ref := c.items(t)
			rtl, nRTL := runFaultLayer(t, 0, ref, plan, c.serialized)

			tl1Items := c.items(t)
			_, nTL1 := runFaultLayer(t, 1, tl1Items, plan, c.serialized)
			checkOutcomes(t, tag+"/tl1", ref, tl1Items)
			if nRTL != nTL1 {
				t.Fatalf("%s: tl1 %d cycles, rtl %d — layer-1 must stay cycle-identical under faults",
					tag, nTL1, nRTL)
			}

			tl2Items := c.items(t)
			tl2, nTL2 := runFaultLayer(t, 2, tl2Items, plan, c.serialized)
			checkOutcomes(t, tag+"/tl2", ref, tl2Items)
			if nTL2 < nRTL {
				t.Fatalf("%s: tl2 (%d cycles) faster than rtl (%d)", tag, nTL2, nRTL)
			}
			// Layer-2 tolerance: the timed model is conservative by a
			// bounded number of cycles per issued attempt (initial issue +
			// each retry); on tiny serialized corpora that overhead does
			// not amortize, so the band is per-attempt, not relative.
			attempts := uint64(len(ref) + tl2.TotalRetries())
			if slack := nTL2 - nRTL; slack > 3*attempts {
				t.Fatalf("%s: tl2 %d cycles over rtl across %d attempts (rtl %d, tl2 %d)",
					tag, slack, attempts, nRTL, nTL2)
			}
			if rtl.Errors() > 0 && planName == "scripted" {
				// The unbounded window must exhaust the budget exactly.
				for i := range ref {
					if ref[i].Tr.Err && int(ref[i].Tr.Retries) != eqRetry.MaxRetries {
						t.Fatalf("%s tx %d: aborted with %d retries, want %d",
							tag, i, ref[i].Tr.Retries, eqRetry.MaxRetries)
					}
				}
			}
		}
	}
}

// TestFaultRetryAccounting pins the master-level counters: TotalRetries
// sums per-transaction retries, Errors counts aborted transactions only.
func TestFaultRetryAccounting(t *testing.T) {
	plan := fault.Plan{Scripted: []fault.ScriptedFault{
		{Op: fault.OpRead, Addr: lay.Fast + 0x40, After: 1, Count: 2}, // 2 retries then OK
		{Op: fault.OpRead, Addr: lay.Slow + 0x80, After: 0, Count: 0}, // aborts
	}}
	items := []core.Item{
		mustSingle(t, 1, ecbus.Read, lay.Fast+0x40, 0),
		mustSingle(t, 2, ecbus.Read, lay.Fast+0x40, 0),
		mustSingle(t, 3, ecbus.Read, lay.Slow+0x80, 0),
	}
	m, _ := runFaultLayer(t, 0, items, plan, true)
	// Word 0x40: access 0 OK (tx 1), accesses 1,2 fail then access 3 OK
	// (tx 2 → two retries). Word 0x80: every access fails (tx 3 → four
	// retries, then abort).
	if items[0].Tr.Err || items[0].Tr.Retries != 0 {
		t.Fatalf("tx1: err=%v retries=%d, want clean", items[0].Tr.Err, items[0].Tr.Retries)
	}
	if items[1].Tr.Err || items[1].Tr.Retries != 2 {
		t.Fatalf("tx2: err=%v retries=%d, want 2 retries then OK", items[1].Tr.Err, items[1].Tr.Retries)
	}
	if !items[2].Tr.Err || int(items[2].Tr.Retries) != eqRetry.MaxRetries {
		t.Fatalf("tx3: err=%v retries=%d, want abort after %d",
			items[2].Tr.Err, items[2].Tr.Retries, eqRetry.MaxRetries)
	}
	if m.TotalRetries() != 2+eqRetry.MaxRetries {
		t.Fatalf("TotalRetries = %d, want %d", m.TotalRetries(), 2+eqRetry.MaxRetries)
	}
	if m.Errors() != 1 {
		t.Fatalf("Errors = %d, want 1", m.Errors())
	}
}
