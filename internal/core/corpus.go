package core

import (
	"repro/internal/ecbus"
	"repro/internal/logic"
)

// Layout names the addresses a stimulus corpus targets: a zero-wait-state
// slave and a slave with wait states, each at least 4 KiB.
type Layout struct {
	Fast uint64 // base of a zero-wait slave
	Slow uint64 // base of a slave with address/data wait states
}

// corpusBuilder numbers transactions and accumulates script items.
type corpusBuilder struct {
	items []Item
	id    uint64
}

func (b *corpusBuilder) single(kind ecbus.Kind, addr uint64, w ecbus.Width, data uint32, notBefore uint64) {
	b.id++
	tr, err := ecbus.NewSingle(b.id, kind, addr, w, data)
	if err != nil {
		panic(err) // corpora are hand-constructed; misalignment is a bug
	}
	b.items = append(b.items, Item{Tr: tr, NotBefore: notBefore})
}

func (b *corpusBuilder) burst(kind ecbus.Kind, addr uint64, data []uint32, notBefore uint64) {
	b.id++
	tr, err := ecbus.NewBurst(b.id, kind, addr, data)
	if err != nil {
		panic(err)
	}
	b.items = append(b.items, Item{Tr: tr, NotBefore: notBefore})
}

// VerificationCorpus reproduces the paper's first verification step, the
// "transaction examples defined in the EC interface specification":
// single reads and writes with and without wait states, back-to-back
// reads, back-to-back writes, read followed by write and write followed
// by read with reordering, and burst reads and writes.
func VerificationCorpus(lay Layout) []Item {
	b := &corpusBuilder{}
	gap := uint64(0)
	spaced := func() uint64 { gap += 24; return gap } // isolated cases

	// Singles without wait states, all widths and lanes.
	b.single(ecbus.Read, lay.Fast+0x00, ecbus.W32, 0, spaced())
	b.single(ecbus.Write, lay.Fast+0x04, ecbus.W32, 0xDEADBEEF, spaced())
	b.single(ecbus.Read, lay.Fast+0x09, ecbus.W8, 0, spaced())
	b.single(ecbus.Write, lay.Fast+0x0B, ecbus.W8, 0x5A, spaced())
	b.single(ecbus.Read, lay.Fast+0x0E, ecbus.W16, 0, spaced())
	b.single(ecbus.Write, lay.Fast+0x10, ecbus.W16, 0xA55A, spaced())
	b.single(ecbus.Fetch, lay.Fast+0x40, ecbus.W32, 0, spaced())

	// Singles with wait states.
	b.single(ecbus.Read, lay.Slow+0x00, ecbus.W32, 0, spaced())
	b.single(ecbus.Write, lay.Slow+0x04, ecbus.W32, 0x01020304, spaced())
	b.single(ecbus.Fetch, lay.Slow+0x40, ecbus.W32, 0, spaced())

	// Back-to-back reads (pipelined: issued the same cycle).
	t := spaced()
	for i := 0; i < 4; i++ {
		b.single(ecbus.Read, lay.Fast+0x100+uint64(4*i), ecbus.W32, 0, t)
	}
	// Back-to-back writes.
	t = spaced()
	for i := 0; i < 4; i++ {
		b.single(ecbus.Write, lay.Fast+0x120+uint64(4*i), ecbus.W32, uint32(0x11111111*(i+1)), t)
	}
	// Read followed by write (same issue cycle).
	t = spaced()
	b.single(ecbus.Read, lay.Fast+0x140, ecbus.W32, 0, t)
	b.single(ecbus.Write, lay.Fast+0x144, ecbus.W32, 0xCAFEF00D, t)
	// Write followed by read with reordering: the write targets the slow
	// slave so the later read completes first on the independent read
	// data bus.
	t = spaced()
	b.single(ecbus.Write, lay.Slow+0x80, ecbus.W32, 0xFEEDFACE, t)
	b.single(ecbus.Read, lay.Fast+0x148, ecbus.W32, 0, t)

	// Bursts, both directions, both wait-state classes.
	b.burst(ecbus.Read, lay.Fast+0x200, nil, spaced())
	b.burst(ecbus.Write, lay.Fast+0x210, []uint32{0x10, 0x32, 0x54, 0x76}, spaced())
	b.burst(ecbus.Read, lay.Slow+0x200, nil, spaced())
	b.burst(ecbus.Write, lay.Slow+0x210, []uint32{0xAAAA5555, 0x5555AAAA, 0, 0xFFFFFFFF}, spaced())
	b.burst(ecbus.Fetch, lay.Fast+0x240, nil, spaced())

	return b.items
}

// PerfCorpus builds the Table-3 workload: "all combinations between
// single read, single write, burst read, and burst write transactions",
// i.e. all 16 ordered pairs, repeated until n transactions are reached,
// all issued back-to-back for maximum pipelining.
func PerfCorpus(lay Layout, n int) []Item {
	b := &corpusBuilder{}
	type gen func(addr uint64)
	gens := []gen{
		func(a uint64) { b.single(ecbus.Read, a&^3, ecbus.W32, 0, 0) },
		func(a uint64) { b.single(ecbus.Write, a&^3, ecbus.W32, uint32(a)*0x9E37, 0) },
		func(a uint64) { b.burst(ecbus.Read, a&^15, nil, 0) },
		func(a uint64) {
			w := uint32(a) * 0x85EB
			b.burst(ecbus.Write, a&^15, []uint32{w, ^w, w ^ 0xFFFF, w << 3}, 0)
		},
	}
	addr := lay.Fast
	for len(b.items) < n {
		for i := 0; i < len(gens) && len(b.items) < n; i++ {
			for j := 0; j < len(gens) && len(b.items) < n; j++ {
				gens[i](addr)
				addr += 16
				gens[j](addr)
				addr += 16
				if addr > lay.Fast+0xE00 {
					addr = lay.Fast
				}
			}
		}
	}
	return b.items
}

// RandomCorpus generates n pseudo-random legal transactions over the
// layout, used by the layer-equivalence property tests. Roughly half the
// traffic is pipelined (issued as soon as possible) and half spaced out,
// and both wait-state classes are exercised.
func RandomCorpus(seed uint64, n int, lay Layout) []Item {
	b := &corpusBuilder{}
	r := logic.NewLFSR(seed)
	var when uint64
	for len(b.items) < n {
		if r.NextRange(2) == 0 {
			when += uint64(r.NextRange(6))
		}
		base := lay.Fast
		if r.NextBool() {
			base = lay.Slow
		}
		off := uint64(r.NextRange(0xF00))
		kind := []ecbus.Kind{ecbus.Read, ecbus.Write, ecbus.Fetch}[r.NextRange(3)]
		if r.NextRange(4) == 0 { // 25% bursts
			var data []uint32
			if kind == ecbus.Write {
				data = []uint32{uint32(r.Next()), uint32(r.Next()), uint32(r.Next()), uint32(r.Next())}
			}
			if kind == ecbus.Fetch && r.NextBool() {
				kind = ecbus.Read
			}
			b.burst(kind, base+(off&^15), data, when)
			continue
		}
		w := []ecbus.Width{ecbus.W8, ecbus.W16, ecbus.W32}[r.NextRange(3)]
		if kind == ecbus.Fetch {
			w = ecbus.W32 // instruction fetches are word accesses
		}
		switch w {
		case ecbus.W16:
			off &^= 1
		case ecbus.W32:
			off &^= 3
		}
		b.single(kind, base+off, w, uint32(r.Next()), when)
	}
	return b.items
}

// CharCorpus is the characterization workload used to extract the
// per-transition energy table. Its access patterns are deliberately
// tamer than the evaluation corpora — sequential addresses and
// low-activity data, the typical bring-up patterns a first prototype is
// characterized with — which is one reason the layer-1 estimate deviates
// on livelier workloads (paper §3.3, "sources of inaccuracy").
func CharCorpus(lay Layout, n int) []Item {
	b := &corpusBuilder{}
	addr := lay.Fast
	var when uint64
	for i := 0; len(b.items) < n; i++ {
		switch i % 4 {
		case 0:
			b.single(ecbus.Read, addr&^3, ecbus.W32, 0, when)
		case 1:
			b.single(ecbus.Write, addr&^3, ecbus.W32, uint32(i), when)
		case 2:
			b.single(ecbus.Fetch, addr&^3, ecbus.W32, 0, when)
		case 3:
			b.burst(ecbus.Read, addr&^15, nil, when)
		}
		addr += 4
		if addr > lay.Fast+0xE00 {
			addr = lay.Slow
		}
		if addr > lay.Slow+0xE00 {
			addr = lay.Fast
		}
		when += 2
	}
	return b.items
}

// CloneItems deep-copies a corpus so the same stimulus can be replayed
// into several bus models (transactions carry mutable result state).
func CloneItems(items []Item) []Item {
	out := make([]Item, len(items))
	for i, it := range items {
		out[i] = Item{Tr: it.Tr.Clone(), NotBefore: it.NotBefore}
	}
	return out
}
