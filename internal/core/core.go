// Package core is the paper's hierarchical bus-model framework: the
// layer-independent interfaces that masters, slaves and energy probes
// program against, the script master used to drive verification corpora
// into any layer, and the platform builder that assembles a smart-card
// system at a chosen abstraction level.
//
// The hierarchy (paper §3):
//
//	layer 0  (rtlbus)   signal/cycle true   gate-level energy (gatepower)
//	layer 1  (tlm1)     cycle accurate      per-cycle transition energy
//	layer 2  (tlm2)     timed               per-phase analytic energy
//
// All three bus models expose the same master-side Access semantics
// (Initiator), so a master binds to any layer unchanged — the property
// that makes the hierarchy usable for communication refinement.
package core

import (
	"repro/internal/ecbus"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Initiator is the master-side bus interface shared by every layer:
// non-blocking, invoked once per transaction per rising edge. The first
// call submits the transaction (StateRequest, or StateWait if the bus
// cannot accept it this cycle); subsequent calls poll until a terminal
// state (StateOK / StateError). This is the paper's "bus master invokes
// the bus interface every clock cycle until the bus returns error or
// ok".
type Initiator interface {
	Access(tr *ecbus.Transaction) ecbus.BusState
}

// EnergyMeter is the power interface common to the layer-1 and layer-2
// models: "a method which returns the dissipated energy since the last
// method call" plus the running total.
type EnergyMeter interface {
	// EnergySince returns the energy in joules dissipated since the
	// previous EnergySince call (or since reset).
	EnergySince() float64
	// TotalEnergy returns the energy in joules dissipated since reset.
	TotalEnergy() float64
}

// CycleEnergyMeter is the layer-1 power interface: additionally to
// EnergyMeter it returns "the energy dissipated during the last clock
// cycle", enabling cycle-accurate energy profiling.
type CycleEnergyMeter interface {
	EnergyMeter
	EnergyLastCycle() float64
}

// Item is one scripted bus request: the transaction and the earliest
// cycle the master may present it.
type Item struct {
	Tr        *ecbus.Transaction
	NotBefore uint64
}

// RetryPolicy is a master's reaction to bus errors. The zero value
// aborts on the first error (no retries), the historical behaviour.
type RetryPolicy struct {
	// MaxRetries is the number of times one transaction may be re-issued
	// after completing with a bus error before the master gives up and
	// reports the error.
	MaxRetries int
	// Backoff is the number of idle cycles inserted before an errored
	// transaction is re-presented (0 = re-issue the next cycle).
	Backoff uint64
}

// ScriptMaster replays a list of bus requests into an Initiator,
// keeping transactions pipelined up to MaxInFlight, exactly as the bus
// interface unit of the core would. It registers on the kernel's rising
// edge. It is the bus-functional master used for verification and for
// replaying traced transaction sequences into the transaction-level
// models (paper §4.1).
type ScriptMaster struct {
	bus      Initiator
	items    []Item
	next     int
	inflight []*ecbus.Transaction

	// MaxInFlight limits pipelining; the EC categories independently cap
	// outstanding transactions at 4 each, so 12 means "as pipelined as
	// the protocol allows". 1 serializes completely.
	MaxInFlight int

	// Retry is the bus-error reaction policy. Set it before the first
	// kernel cycle.
	Retry RetryPolicy

	// Metrics, when non-nil, receives the master-side retry count: one
	// Retries(1) per re-issue, so the registry total equals TotalRetries
	// and the sum of Transaction.Retries over final completions.
	Metrics *metrics.Registry

	retryQ       []Item // errored transactions awaiting re-issue
	totalRetries int

	completed []*ecbus.Transaction
	errors    int
}

// NewScriptMaster creates a script master over bus and registers it on
// the kernel's rising edge.
func NewScriptMaster(k *sim.Kernel, bus Initiator, items []Item) *ScriptMaster {
	m := &ScriptMaster{
		bus:         bus,
		items:       items,
		MaxInFlight: 3 * ecbus.MaxOutstanding,
		inflight:    make([]*ecbus.Transaction, 0, 3*ecbus.MaxOutstanding),
		completed:   make([]*ecbus.Transaction, 0, len(items)),
	}
	k.AtHinted(sim.Rising, "script-master", m.tick, m.hint, nil)
	return m
}

// hint reports the earliest future cycle the master needs to run. Ticks
// where the master can issue a request, must retry a rejected one, or
// can harvest a finished transaction execute normally; ticks where it
// would only poll unfinished transactions (a side-effect-free Access
// returning StateWait) are skippable.
func (m *ScriptMaster) hint(now uint64) uint64 {
	next := sim.NoEvent
	if len(m.retryQ) > 0 && len(m.inflight) < m.MaxInFlight {
		if nb := m.retryQ[0].NotBefore; nb <= now {
			return now // a backed-off transaction is due for re-issue
		} else if nb < next {
			next = nb
		}
	}
	if m.next < len(m.items) && len(m.inflight) < m.MaxInFlight {
		if nb := m.items[m.next].NotBefore; nb <= now {
			return now // can issue (or must retry a rejection) this cycle
		} else if nb < next {
			next = nb
		}
	}
	for _, tr := range m.inflight {
		if tr.Done {
			return now // completion to harvest
		}
	}
	return next
}

// Serialized makes the master wait for each transaction to finish before
// issuing the next, and returns the master for chaining.
func (m *ScriptMaster) Serialized() *ScriptMaster {
	m.MaxInFlight = 1
	return m
}

// Done reports whether every scripted transaction has completed.
func (m *ScriptMaster) Done() bool {
	return m.next == len(m.items) && len(m.inflight) == 0 && len(m.retryQ) == 0
}

// Completed returns the finished transactions in completion order.
func (m *ScriptMaster) Completed() []*ecbus.Transaction { return m.completed }

// Errors returns the number of transactions that finished with an error
// after exhausting the retry policy.
func (m *ScriptMaster) Errors() int { return m.errors }

// TotalRetries returns the number of re-issues across all transactions.
func (m *ScriptMaster) TotalRetries() int { return m.totalRetries }

func (m *ScriptMaster) tick(cycle uint64) {
	// Poll in-flight transactions; the bus answers Wait until done.
	keep := m.inflight[:0]
	for _, tr := range m.inflight {
		st := m.bus.Access(tr)
		if st.Done() {
			m.finish(tr, st, cycle)
		} else {
			keep = append(keep, tr)
		}
	}
	m.inflight = keep

	// Re-issue backed-off errored transactions first, oldest first, so a
	// retry precedes every scripted item that was submitted after the
	// failing transaction.
	for len(m.retryQ) > 0 && len(m.inflight) < m.MaxInFlight {
		it := m.retryQ[0]
		if it.NotBefore > cycle {
			break
		}
		st := m.bus.Access(it.Tr)
		switch st {
		case ecbus.StateRequest:
			m.inflight = append(m.inflight, it.Tr)
			m.retryQ = m.retryQ[1:]
		case ecbus.StateOK, ecbus.StateError:
			m.retryQ = m.retryQ[1:]
			m.finish(it.Tr, st, cycle)
		default:
			return // bus full: retry next cycle
		}
	}

	// Issue new requests while the script and the bus allow.
	for m.next < len(m.items) && len(m.inflight) < m.MaxInFlight {
		it := m.items[m.next]
		if it.NotBefore > cycle {
			break
		}
		st := m.bus.Access(it.Tr)
		switch st {
		case ecbus.StateRequest:
			m.inflight = append(m.inflight, it.Tr)
			m.next++
		case ecbus.StateOK, ecbus.StateError:
			// Completed immediately (validation failure path).
			m.finish(it.Tr, st, cycle)
			m.next++
		default:
			// Bus full: retry next cycle, preserve program order.
			return
		}
	}
}

// finish applies the retry policy to a completed transaction: an
// errored transaction with retry budget left is reset and queued for
// re-issue after the backoff window; otherwise it is final.
func (m *ScriptMaster) finish(tr *ecbus.Transaction, st ecbus.BusState, cycle uint64) {
	if st == ecbus.StateError && int(tr.Retries) < m.Retry.MaxRetries {
		tr.ResetForRetry()
		m.totalRetries++
		m.Metrics.Retries(1)
		m.retryQ = append(m.retryQ, Item{Tr: tr, NotBefore: cycle + 1 + m.Retry.Backoff})
		return
	}
	m.completed = append(m.completed, tr)
	if st == ecbus.StateError {
		m.errors++
	}
}

// RunScript drives items through bus until completion or maxCycles, and
// returns the master and the number of cycles executed.
func RunScript(k *sim.Kernel, bus Initiator, items []Item, maxCycles uint64) (*ScriptMaster, uint64) {
	m := NewScriptMaster(k, bus, items)
	n, _ := k.RunUntil(maxCycles, m.Done)
	return m, n
}
