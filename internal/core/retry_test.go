package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/rtlbus"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
)

// The RetryPolicy budget contract, driven through scripted fault
// windows so the error schedule is exact at every layer. The zero
// policy is the abort path: the first bus error retires the
// transaction as failed with no re-issue — not one retry, not a
// backoff stall — and a transient fault that would clear on the second
// attempt still aborts.
func TestRetryPolicyBudget(t *testing.T) {
	const target = 0x40
	persistentWrite := fault.Plan{Scripted: []fault.ScriptedFault{
		{Op: fault.OpWrite, Addr: target, After: 0, Count: 0},
	}}
	transientWrite := fault.Plan{Scripted: []fault.ScriptedFault{
		{Op: fault.OpWrite, Addr: target, After: 0, Count: 2},
	}}
	transientRead := fault.Plan{Scripted: []fault.ScriptedFault{
		{Op: fault.OpRead, Addr: target, After: 0, Count: 1},
	}}

	cases := []struct {
		name        string
		policy      core.RetryPolicy
		plan        fault.Plan
		write       bool
		wantErr     bool
		wantRetries int
	}{
		{
			name:   "zero budget aborts on first error",
			policy: core.RetryPolicy{}, plan: persistentWrite, write: true,
			wantErr: true, wantRetries: 0,
		},
		{
			name:   "zero budget ignores backoff",
			policy: core.RetryPolicy{MaxRetries: 0, Backoff: 7}, plan: persistentWrite, write: true,
			wantErr: true, wantRetries: 0,
		},
		{
			name:   "zero budget aborts even on transient fault",
			policy: core.RetryPolicy{}, plan: transientWrite, write: true,
			wantErr: true, wantRetries: 0,
		},
		{
			name:   "budget exhausted by persistent fault",
			policy: core.RetryPolicy{MaxRetries: 2, Backoff: 1}, plan: persistentWrite, write: true,
			wantErr: true, wantRetries: 2,
		},
		{
			name:   "transient write recovered within budget",
			policy: core.RetryPolicy{MaxRetries: 4, Backoff: 1}, plan: transientWrite, write: true,
			wantErr: false, wantRetries: 2,
		},
		{
			name:   "transient read recovered within budget",
			policy: core.RetryPolicy{MaxRetries: 4, Backoff: 1}, plan: transientRead, write: false,
			wantErr: false, wantRetries: 1,
		},
		{
			name:   "zero budget read abort",
			policy: core.RetryPolicy{}, plan: transientRead, write: false,
			wantErr: true, wantRetries: 0,
		},
	}
	for _, tc := range cases {
		for layer := 0; layer <= 2; layer++ {
			t.Run(fmt.Sprintf("%s/layer%d", tc.name, layer), func(t *testing.T) {
				k := sim.New(0)
				mp := ecbus.MustMap(fault.Wrap(mem.NewRAM("ram", 0, 0x1000, 0, 0), tc.plan))
				var bus core.Initiator
				switch layer {
				case 0:
					bus = rtlbus.New(k, mp)
				case 1:
					bus = tlm1.New(k, mp)
				default:
					bus = tlm2.New(k, mp)
				}
				kind := ecbus.Read
				if tc.write {
					kind = ecbus.Write
				}
				tr, err := ecbus.NewSingle(1, kind, target, ecbus.W32, 0xA5)
				if err != nil {
					t.Fatal(err)
				}
				m := core.NewScriptMaster(k, bus, []core.Item{{Tr: tr}})
				m.Retry = tc.policy
				k.RunUntil(100_000, m.Done)
				if !m.Done() {
					t.Fatal("run did not complete")
				}
				done := m.Completed()
				if len(done) != 1 {
					t.Fatalf("completed %d transactions, want 1", len(done))
				}
				got := done[0]
				if got.Err != tc.wantErr {
					t.Fatalf("Err = %v, want %v (retries %d)", got.Err, tc.wantErr, got.Retries)
				}
				if int(got.Retries) != tc.wantRetries {
					t.Fatalf("Retries = %d, want %d", got.Retries, tc.wantRetries)
				}
				if m.TotalRetries() != tc.wantRetries {
					t.Fatalf("TotalRetries = %d, want %d", m.TotalRetries(), tc.wantRetries)
				}
				wantErrs := 0
				if tc.wantErr {
					wantErrs = 1
				}
				if m.Errors() != wantErrs {
					t.Fatalf("Errors = %d, want %d", m.Errors(), wantErrs)
				}
			})
		}
	}
}
