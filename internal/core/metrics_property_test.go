package core_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/fault"
	"repro/internal/gatepower"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/rtlbus"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
)

// Cross-layer metric invariants over randomized transaction corpora:
// whatever the corpus, the plan and the layer, the registry's view must
// reconcile exactly with the simulation's own books — the meter total
// bit for bit, the bus statistics counter for counter, the master's
// retry ledger, and the protocol's outstanding limits.

// meteredCapture is one randomized run plus every independent source of
// truth the invariants are checked against.
type meteredCapture struct {
	master *core.ScriptMaster
	snap   metrics.Snapshot
	ring   *metrics.RingSink

	meterBits uint64 // IEEE-754 bits of the energy meter's final total

	busAccepted  uint64
	busCompleted uint64
	busErrors    uint64
	busRejected  uint64
	busBeats     uint64 // layers 0 and 1 only
	hasBeats     bool
}

// meteredRun drives items through a metered bus of the given layer.
func meteredRun(t *testing.T, layer int, items []core.Item, char gatepower.CharTable,
	plan fault.Plan, retry core.RetryPolicy) meteredCapture {
	t.Helper()
	reg := metrics.New(fmt.Sprintf("L%d", layer))
	ring := metrics.NewRingSink(8192)
	reg.SetSink(ring)

	k := sim.New(0)
	k.SetRunObserver(reg)
	mp := ecbus.MustMap(
		fault.Wrap(mem.NewRAM("fast", lay.Fast, 0x1000, 0, 0), plan).AttachMetrics(reg),
		fault.Wrap(mem.NewRAM("slow", lay.Slow, 0x1000, 1, 2), plan).AttachMetrics(reg),
	)

	var cap meteredCapture
	var bus core.Initiator
	var total func() float64
	var stats func()
	switch layer {
	case 0:
		b := rtlbus.New(k, mp)
		est := gatepower.NewEstimator(gatepower.DefaultConfig())
		k.AtObserver(sim.Post, "gp", func(uint64) { est.Observe(b.Wires()) }, est.ObserveIdle)
		b.AttachMetrics(k, reg, est.TotalEnergy)
		bus, total = b, est.TotalEnergy
		stats = func() {
			s := b.Stats()
			cap.busAccepted, cap.busCompleted, cap.busErrors, cap.busRejected = s.Accepted, s.Completed, s.Errors, s.Rejected
			cap.busBeats, cap.hasBeats = s.DataBeats, true
		}
	case 1:
		b := tlm1.New(k, mp).AttachPower(tlm1.NewPowerModel(char)).AttachMetrics(reg)
		bus, total = b, b.Power().TotalEnergy
		stats = func() {
			s := b.Stats()
			cap.busAccepted, cap.busCompleted, cap.busErrors, cap.busRejected = s.Accepted, s.Completed, s.Errors, s.Rejected
			cap.busBeats, cap.hasBeats = s.DataBeats, true
		}
	default:
		b := tlm2.New(k, mp).AttachPower(tlm2.NewPowerModel(char)).AttachMetrics(reg)
		bus, total = b, b.Power().TotalEnergy
		stats = func() {
			s := b.Stats()
			cap.busAccepted, cap.busCompleted, cap.busErrors, cap.busRejected = s.Accepted, s.Completed, s.Errors, s.Rejected
		}
	}

	m := core.NewScriptMaster(k, bus, items)
	m.Retry = retry
	m.Metrics = reg
	k.RunUntil(1_000_000, m.Done)
	if !m.Done() {
		t.Fatal("metered run did not complete")
	}
	reg.Finalize(total())
	cap.master = m
	cap.snap = reg.Snapshot()
	cap.ring = ring
	cap.meterBits = math.Float64bits(total())
	stats()
	return cap
}

// ulpDiff returns the distance in representable float64 steps between
// two non-negative finite values.
func ulpDiff(a, b float64) uint64 {
	if a < 0 || b < 0 || math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return math.MaxUint64
	}
	ba, bb := math.Float64bits(a), math.Float64bits(b)
	if ba > bb {
		return ba - bb
	}
	return bb - ba
}

// maxEnergyUlps bounds the drift between the telescoped per-bucket sums
// and the meter total. Each bucket is Kahan-compensated, so the final
// cross-bucket addition is the only uncompensated step.
const maxEnergyUlps = 4

func checkInvariants(t *testing.T, tag string, c meteredCapture, items []core.Item, clean bool) {
	t.Helper()
	s := c.snap

	// Energy: the cursor must carry the meter total verbatim, and the
	// phase attribution must telescope back to it within ulps.
	if math.Float64bits(s.TotalEnergyJ) != c.meterBits {
		t.Errorf("%s: snapshot total %x != meter total %x", tag, math.Float64bits(s.TotalEnergyJ), c.meterBits)
	}
	if d := ulpDiff(s.PhaseEnergySum(), s.TotalEnergyJ); d > maxEnergyUlps {
		t.Errorf("%s: per-phase energy sum off by %d ulps (sum %g, total %g)",
			tag, d, s.PhaseEnergySum(), s.TotalEnergyJ)
	}
	var slaveSum float64
	for _, sl := range s.Slaves {
		slaveSum += sl.EnergyJ
	}
	slaveSum += s.UnattributedJ
	if d := ulpDiff(slaveSum, s.TotalEnergyJ); d > maxEnergyUlps {
		t.Errorf("%s: per-slave energy sum off by %d ulps (sum %g, total %g)",
			tag, d, slaveSum, s.TotalEnergyJ)
	}

	// Counters: the registry mirrors must equal the bus's own statistics.
	if s.Accepted != c.busAccepted || s.Completed != c.busCompleted ||
		s.Errored != c.busErrors || s.Rejected != c.busRejected {
		t.Errorf("%s: tx counters diverge from bus stats: metrics a=%d c=%d e=%d r=%d, bus a=%d c=%d e=%d r=%d",
			tag, s.Accepted, s.Completed, s.Errored, s.Rejected,
			c.busAccepted, c.busCompleted, c.busErrors, c.busRejected)
	}
	if c.hasBeats && s.Beats != c.busBeats {
		t.Errorf("%s: beats %d != bus DataBeats %d", tag, s.Beats, c.busBeats)
	}
	if !c.hasBeats && clean {
		// Layer 2 books beats per completed data phase; on a clean run
		// that is exactly the word count of every transaction that
		// finished OK (error-retired requests never reach a data phase).
		var want uint64
		for _, tr := range c.master.Completed() {
			if !tr.Err {
				want += uint64(tr.Words())
			}
		}
		if s.Beats != want {
			t.Errorf("%s: beats %d != completed words %d", tag, s.Beats, want)
		}
	}

	// Retries: registry == master ledger == sum over final transactions.
	if s.Retries != uint64(c.master.TotalRetries()) {
		t.Errorf("%s: retries %d != master total %d", tag, s.Retries, c.master.TotalRetries())
	}
	var trSum uint64
	for _, tr := range c.master.Completed() {
		trSum += uint64(tr.Retries)
	}
	if s.Retries != trSum {
		t.Errorf("%s: retries %d != sum of Transaction.Retries %d", tag, s.Retries, trSum)
	}

	// Occupancy: never beyond the protocol's per-category limit.
	for cat := 0; cat < int(ecbus.NumCategories); cat++ {
		if s.Occupancy[cat].Max > ecbus.MaxOutstanding {
			t.Errorf("%s: %s occupancy %d exceeds limit %d",
				tag, ecbus.Category(cat), s.Occupancy[cat].Max, ecbus.MaxOutstanding)
		}
	}

	// Spans: one per retirement, all of them through the sink.
	if want := c.busCompleted + c.busErrors; s.Spans != want {
		t.Errorf("%s: spans %d != retirements %d", tag, s.Spans, want)
	}
	if c.ring.Total() != s.Spans {
		t.Errorf("%s: ring saw %d spans, registry %d", tag, c.ring.Total(), s.Spans)
	}
	for _, sp := range c.ring.Spans() {
		if sp.End < sp.Issue && !sp.Err {
			t.Errorf("%s: span %d retired at %d before issue %d", tag, sp.ID, sp.End, sp.Issue)
		}
	}
}

// TestMetricsInvariants checks the invariants on 100 randomized corpora
// at every layer, rotating through the named fault plans so the error
// and retry paths are load-bearing.
func TestMetricsInvariants(t *testing.T) {
	char := characterize(t)
	plans := []string{"none", "flaky", "storm", "grind"}
	seeds := 100
	if testing.Short() {
		seeds = 12
	}
	for seed := 1; seed <= seeds; seed++ {
		planName := plans[seed%len(plans)]
		plan, _ := fault.Named(planName)
		items := core.RandomCorpus(uint64(seed), 120, lay)
		for layer := 0; layer <= 2; layer++ {
			tag := fmt.Sprintf("seed%d/%s/layer%d", seed, planName, layer)
			c := meteredRun(t, layer, core.CloneItems(items), char, plan, eqRetry)
			checkInvariants(t, tag, c, items, plan.Empty())
		}
	}
}
