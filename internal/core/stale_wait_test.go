package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
)

// TestLayer2DynamicWaitSamplingRegression pins the fix for the stale
// dynamic-wait sample: the layer-2 model used to sample ExtraWait once
// at request creation, so a read issued while the EEPROM was still idle
// — but whose address phase only started after a queued write kicked off
// programming — booked zero stall and completed tens of cycles before
// the layer-1 model. The fix re-samples at address-phase start, the same
// sampling point layers 0 and 1 use.
func TestLayer2DynamicWaitSamplingRegression(t *testing.T) {
	// Three writes ahead of the read keep the address unit busy long
	// enough that the first write's programming window is active when the
	// read's address phase finally starts; a pipelined master creates all
	// four requests up front, so the creation-time sample sees an idle
	// device.
	build := func(mk func(k *sim.Kernel, m *ecbus.Map) core.Initiator) (uint64, *ecbus.Transaction) {
		k := sim.New(0)
		ee := mem.NewEEPROM("ee", 0, 0x8000, k)
		bus := mk(k, ecbus.MustMap(ee))
		w1, _ := ecbus.NewSingle(1, ecbus.Write, 0x100, ecbus.W32, 5)
		w2, _ := ecbus.NewSingle(2, ecbus.Write, 0x200, ecbus.W32, 6)
		w3, _ := ecbus.NewSingle(3, ecbus.Write, 0x300, ecbus.W32, 7)
		r, _ := ecbus.NewSingle(4, ecbus.Read, 0x100, ecbus.W32, 0)
		items := []core.Item{{Tr: w1}, {Tr: w2}, {Tr: w3}, {Tr: r}}
		m, n := core.RunScript(k, bus, items, 10_000)
		if !m.Done() || m.Errors() != 0 {
			t.Fatal("EEPROM scenario failed")
		}
		return n, r
	}

	n1, r1 := build(func(k *sim.Kernel, m *ecbus.Map) core.Initiator { return tlm1.New(k, m) })
	n2, r2 := build(func(k *sim.Kernel, m *ecbus.Map) core.Initiator { return tlm2.New(k, m) })

	if r1.Data[0] != 5 || r2.Data[0] != 5 {
		t.Fatalf("read back %d/%d, want 5 (write not committed before read)", r1.Data[0], r2.Data[0])
	}
	// The read must stall on the programming window at both layers.
	if r1.AddrCycle < 30 || r2.AddrCycle < 30 {
		t.Fatalf("read address phases at %d/%d — programming stall missing", r1.AddrCycle, r2.AddrCycle)
	}
	// Conservatism: with the stale creation-time sample the layer-2 run
	// finished tens of cycles *before* layer 1. Post-fix it never does,
	// and stays within a few cycles of structural overhead.
	if n2 < n1 {
		t.Fatalf("tl2 (%d cycles) faster than tl1 (%d) — stale wait sample is back", n2, n1)
	}
	if n2-n1 > 12 {
		t.Fatalf("tl2 %d cycles vs tl1 %d — divergence beyond structural overhead", n2, n1)
	}
}
