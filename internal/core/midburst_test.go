package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/mem"
	"repro/internal/rtlbus"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
)

// faultySlave wraps a RAM and fails accesses to one poisoned word,
// injecting slave-side errors mid-burst.
type faultySlave struct {
	*mem.RAM
	poison uint64
}

func (f *faultySlave) ReadWord(addr uint64, w ecbus.Width) (uint32, bool) {
	if addr&^3 == f.poison {
		return 0, false
	}
	return f.RAM.ReadWord(addr, w)
}

func (f *faultySlave) WriteWord(addr uint64, data uint32, w ecbus.Width) bool {
	if addr&^3 == f.poison {
		return false
	}
	return f.RAM.WriteWord(addr, data, w)
}

// TestMidBurstSlaveErrorAgreement: a burst whose third beat hits a
// failing word must error at every layer, and the preceding beats'
// write effects agree between the cycle-true layers.
func TestMidBurstSlaveErrorAgreement(t *testing.T) {
	build := func() (*sim.Kernel, *ecbus.Map, *mem.RAM) {
		k := sim.New(0)
		ram := mem.NewRAM("ram", 0, 0x1000, 0, 1)
		f := &faultySlave{RAM: ram, poison: 0x108} // third word of the burst at 0x100
		return k, ecbus.MustMap(f), ram
	}
	type result struct {
		err      bool
		beats    [4]uint32
		okSingle bool
	}
	run := func(layer int) result {
		k, m, ram := build()
		var bus core.Initiator
		switch layer {
		case 0:
			bus = rtlbus.New(k, m)
		case 1:
			bus = tlm1.New(k, m)
		default:
			bus = tlm2.New(k, m)
		}
		burst, _ := ecbus.NewBurst(1, ecbus.Write, 0x100, []uint32{0xA1, 0xA2, 0xA3, 0xA4})
		after, _ := ecbus.NewSingle(2, ecbus.Read, 0x200, ecbus.W32, 0)
		sm, _ := core.RunScript(k, bus, []core.Item{{Tr: burst}, {Tr: after}}, 10000)
		if !sm.Done() {
			t.Fatalf("layer %d hung", layer)
		}
		var r result
		r.err = burst.Err
		for i := 0; i < 4; i++ {
			r.beats[i], _ = ram.ReadWord(0x100+uint64(4*i), ecbus.W32)
		}
		r.okSingle = !after.Err
		return r
	}
	r0, r1, r2 := run(0), run(1), run(2)
	for layer, r := range map[int]result{0: r0, 1: r1, 2: r2} {
		if !r.err {
			t.Fatalf("layer %d: poisoned burst did not error", layer)
		}
		if !r.okSingle {
			t.Fatalf("layer %d: error not contained to the burst", layer)
		}
	}
	// Cycle-true layers stop at the failing beat: words 0-1 written,
	// 2-3 untouched. (Layer 2 moves the block at completion and may
	// differ; its contract is the error flag, not partial effects.)
	for layer, r := range map[int]result{0: r0, 1: r1} {
		if r.beats[0] != 0xA1 || r.beats[1] != 0xA2 {
			t.Fatalf("layer %d: pre-error beats lost: %#x", layer, r.beats)
		}
		if r.beats[2] != 0 || r.beats[3] != 0 {
			t.Fatalf("layer %d: post-error beats written: %#x", layer, r.beats)
		}
	}
	if r0.beats != r1.beats {
		t.Fatalf("layers 0/1 disagree on partial effects: %#x vs %#x", r0.beats, r1.beats)
	}
}

// TestMidBurstReadErrorStopsStream checks the read direction: the
// erroring beat terminates the transaction and later reads still work.
func TestMidBurstReadErrorStopsStream(t *testing.T) {
	for layer := 0; layer <= 2; layer++ {
		k := sim.New(0)
		ram := mem.NewRAM("ram", 0, 0x1000, 0, 0)
		ram.LoadWords(0x100, []uint32{1, 2, 3, 4})
		f := &faultySlave{RAM: ram, poison: 0x104}
		m := ecbus.MustMap(f)
		var bus core.Initiator
		switch layer {
		case 0:
			bus = rtlbus.New(k, m)
		case 1:
			bus = tlm1.New(k, m)
		default:
			bus = tlm2.New(k, m)
		}
		burst, _ := ecbus.NewBurst(1, ecbus.Read, 0x100, nil)
		next, _ := ecbus.NewSingle(2, ecbus.Read, 0x10C, ecbus.W32, 0)
		sm, _ := core.RunScript(k, bus, []core.Item{{Tr: burst}, {Tr: next}}, 10000)
		if !sm.Done() {
			t.Fatalf("layer %d hung", layer)
		}
		if !burst.Err {
			t.Fatalf("layer %d: read burst did not error", layer)
		}
		if next.Err || next.Data[0] != 4 {
			t.Fatalf("layer %d: follow-up read broken: err=%v data=%#x",
				layer, next.Err, next.Data[0])
		}
	}
}
