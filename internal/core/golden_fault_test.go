package core_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/fault"
	"repro/internal/rtlbus"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The golden property must hold on the error paths too: with a fault
// plan injecting bus errors, wait storms and retries, the reference path
// (every cycle executed) and the optimized path (idle fast-forward,
// dirty masks) must produce byte-identical captures. At layer 0 the
// energy string includes per-signal rise/fall counts for every wire —
// EB_RBErr and EB_WBErr among them — so an idle-skip that swallowed an
// error edge diverges from the reference and fails the comparison.

func goldenFaultPlans(t *testing.T, items []core.Item) map[string]fault.Plan {
	t.Helper()
	plans := equivalencePlans(t)
	plans["scripted"] = scriptedFor(items)
	return plans
}

func TestGoldenFaultEquivalence(t *testing.T) {
	char := characterize(t)
	base := disjointCorpus(t)
	for planName, plan := range goldenFaultPlans(t, base) {
		plan := plan
		for layer := 0; layer <= 2; layer++ {
			t.Run(fmt.Sprintf("%s/layer%d", planName, layer), func(t *testing.T) {
				mp := func() *ecbus.Map { return faultMap(plan) }
				var ref goldenCapture
				withReference(t, func() {
					ref = goldenRunOn(t, layer, core.CloneItems(base), char, mp, eqRetry)
				})
				opt := goldenRunOn(t, layer, core.CloneItems(base), char, mp, eqRetry)

				if !ref.done || !opt.done {
					t.Fatalf("incomplete run: ref=%v opt=%v", ref.done, opt.done)
				}
				if ref.errors == 0 && ref.retries == 0 {
					t.Fatal("plan injected nothing — fault golden property not exercised")
				}
				if ref.cycles != opt.cycles {
					t.Errorf("cycles: ref %d, opt %d (opt skipped %d)", ref.cycles, opt.cycles, opt.skipped)
				}
				if ref.errors != opt.errors {
					t.Errorf("errors: ref %d, opt %d", ref.errors, opt.errors)
				}
				if ref.retries != opt.retries {
					t.Errorf("retries: ref %d, opt %d", ref.retries, opt.retries)
				}
				if ref.timing != opt.timing {
					t.Errorf("transaction timing diverged:\nref:\n%s\nopt:\n%s", ref.timing, opt.timing)
				}
				if ref.energy != opt.energy {
					t.Errorf("energy bits diverged:\nref: %s\nopt: %s", ref.energy, opt.energy)
				}
				if ref.trace != opt.trace {
					t.Errorf("trace bytes diverged")
				}
				if ref.skipped != 0 {
					t.Errorf("reference path skipped %d cycles; must execute every cycle", ref.skipped)
				}
			})
		}
	}
}

// TestGoldenFaultIdleSkipActive guards against a vacuous equivalence:
// the optimized path must still fast-forward somewhere on the fault
// corpus, proving the comparison above pits real skipping against the
// error-wire edges rather than two cycle-by-cycle runs.
func TestGoldenFaultIdleSkipActive(t *testing.T) {
	char := characterize(t)
	base := disjointCorpus(t)
	for layer := 0; layer <= 2; layer++ {
		var skipped uint64
		for _, plan := range goldenFaultPlans(t, base) {
			plan := plan
			mp := func() *ecbus.Map { return faultMap(plan) }
			c := goldenRunOn(t, layer, core.CloneItems(base), char, mp, eqRetry)
			skipped += c.skipped
		}
		if skipped == 0 {
			t.Errorf("layer %d: no cycles skipped under any fault plan", layer)
		}
	}
}

// TestGoldenVCDFaultEquivalence dumps the layer-0 wire trace under the
// scripted fault plan in both modes and requires identical VCDs that
// actually contain rising edges on both error wires.
func TestGoldenVCDFaultEquivalence(t *testing.T) {
	items := disjointCorpus(t)
	plan := scriptedFor(items)
	run := func() string {
		k := sim.New(0)
		b := rtlbus.New(k, faultMap(plan))
		var sb strings.Builder
		v := trace.NewVCD(&sb)
		k.At(sim.Post, "vcd", func(uint64) { v.Observe(b.Wires()) })
		m := core.NewScriptMaster(k, b, core.CloneItems(items))
		m.Retry = eqRetry
		k.RunUntil(1_000_000, m.Done)
		if !m.Done() {
			t.Fatal("run incomplete")
		}
		if m.Errors()+m.TotalRetries() == 0 {
			t.Fatal("scripted plan injected nothing")
		}
		if err := v.Close(); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	var ref string
	withReference(t, func() { ref = run() })
	opt := run()
	if ref != opt {
		t.Fatal("VCD dumps differ between reference and optimized modes under fault plan")
	}
	for _, id := range []ecbus.SignalID{ecbus.SigRBErr, ecbus.SigWBErr} {
		// The VCD identifier code is string(rune('!'+id)); a "1<code>"
		// line is a rising edge on that wire.
		edge := "1" + string(rune('!'+int(id))) + "\n"
		if !strings.Contains(ref, edge) {
			t.Errorf("VCD dump has no rising edge on %s", id)
		}
	}
}
