package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/metrics"
)

// The observability layer must be a pure observer: attaching a fully
// loaded registry (counters, energy attribution, span sink) to every
// hook point cannot change a single byte of the golden capture — not a
// cycle, not a timing field, not the last bit of an energy figure.

// newLoadedRegistry builds a registry with a ring sink attached, the
// heaviest configuration a simulation can carry.
func newLoadedRegistry(layer int) (*metrics.Registry, *metrics.RingSink) {
	reg := metrics.New(fmt.Sprintf("L%d", layer))
	ring := metrics.NewRingSink(4096)
	reg.SetSink(ring)
	return reg, ring
}

func compareCaptures(t *testing.T, plain, metered goldenCapture) {
	t.Helper()
	if !plain.done || !metered.done {
		t.Fatalf("incomplete run: plain=%v metered=%v", plain.done, metered.done)
	}
	if plain.cycles != metered.cycles {
		t.Errorf("cycles: plain %d, metered %d", plain.cycles, metered.cycles)
	}
	if plain.errors != metered.errors {
		t.Errorf("errors: plain %d, metered %d", plain.errors, metered.errors)
	}
	if plain.retries != metered.retries {
		t.Errorf("retries: plain %d, metered %d", plain.retries, metered.retries)
	}
	if plain.timing != metered.timing {
		t.Errorf("transaction timing diverged:\nplain:\n%s\nmetered:\n%s", plain.timing, metered.timing)
	}
	if plain.energy != metered.energy {
		t.Errorf("energy bits diverged:\nplain:   %s\nmetered: %s", plain.energy, metered.energy)
	}
	if plain.trace != metered.trace {
		t.Errorf("trace bytes diverged")
	}
	if plain.skipped != metered.skipped {
		t.Errorf("skipped cycles: plain %d, metered %d", plain.skipped, metered.skipped)
	}
}

// TestGoldenMetricsNeutral compares metrics-off and metrics-on runs of
// the full corpus matrix at every layer, in the optimized mode the
// tools use.
func TestGoldenMetricsNeutral(t *testing.T) {
	char := characterize(t)
	for name, items := range goldenCorpora() {
		for layer := 0; layer <= 2; layer++ {
			t.Run(fmt.Sprintf("%s/layer%d", name, layer), func(t *testing.T) {
				plain := goldenRun(t, layer, core.CloneItems(items), char)
				reg, ring := newLoadedRegistry(layer)
				metered := goldenRunMetered(t, layer, core.CloneItems(items), char,
					testMap, core.RetryPolicy{}, reg)
				compareCaptures(t, plain, metered)

				// The registry must actually have observed the run, or the
				// comparison above proves nothing.
				snap := reg.Snapshot()
				if snap.Completed == 0 || snap.Spans == 0 || ring.Total() == 0 {
					t.Fatalf("registry saw nothing: completed=%d spans=%d ring=%d",
						snap.Completed, snap.Spans, ring.Total())
				}
				if snap.TotalEnergyJ == 0 {
					t.Fatal("registry attributed no energy")
				}
			})
		}
	}
}

// TestGoldenMetricsNeutralReference repeats the neutrality check with
// the reference path selected, so the metrics hooks are also proven
// inert on the every-cycle-executed configuration.
func TestGoldenMetricsNeutralReference(t *testing.T) {
	char := characterize(t)
	items := core.VerificationCorpus(lay)
	for layer := 0; layer <= 2; layer++ {
		t.Run(fmt.Sprintf("layer%d", layer), func(t *testing.T) {
			withReference(t, func() {
				plain := goldenRun(t, layer, core.CloneItems(items), char)
				reg, _ := newLoadedRegistry(layer)
				metered := goldenRunMetered(t, layer, core.CloneItems(items), char,
					testMap, core.RetryPolicy{}, reg)
				compareCaptures(t, plain, metered)
			})
		})
	}
}

// TestGoldenMetricsNeutralFault repeats the neutrality check under a
// fault plan with retries, covering the error-path hooks (errored
// spans, retry counters, fault mirrors).
func TestGoldenMetricsNeutralFault(t *testing.T) {
	char := characterize(t)
	base := disjointCorpus(t)
	for planName, plan := range goldenFaultPlans(t, base) {
		plan := plan
		for layer := 0; layer <= 2; layer++ {
			t.Run(fmt.Sprintf("%s/layer%d", planName, layer), func(t *testing.T) {
				mp := func() *ecbus.Map { return faultMap(plan) }
				plain := goldenRunOn(t, layer, core.CloneItems(base), char, mp, eqRetry)
				reg, _ := newLoadedRegistry(layer)
				metered := goldenRunMetered(t, layer, core.CloneItems(base), char, mp, eqRetry, reg)
				compareCaptures(t, plain, metered)
				if plain.errors == 0 && plain.retries == 0 {
					t.Fatal("plan injected nothing — error-path neutrality not exercised")
				}
			})
		}
	}
}
