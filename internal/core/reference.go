package core

import (
	"sync/atomic"

	"repro/internal/gatepower"
	"repro/internal/sim"
	"repro/internal/tlm1"
)

// reference mirrors the last SetReference value for Reference().
var reference atomic.Bool

// SetReference switches the simulation core between its optimized
// per-cycle hot path (the default) and the straightforward reference
// path. The reference path executes every cycle (no idle-cycle
// fast-forward) and full-scans all signals in the energy models (no
// dirty-mask iteration, no precomputed tables on the scan side).
//
// The switch affects objects constructed after the call; flip it before
// building a platform. The golden-equivalence tests run every corpus
// through both paths and require byte-identical results — reported
// tables, traces and energy totals must not depend on this switch.
func SetReference(on bool) {
	reference.Store(on)
	gatepower.SetReferencePath(on)
	tlm1.SetReferencePath(on)
	sim.SetIdleSkipDisabled(on)
}

// Reference reports whether the reference path is selected.
func Reference() bool { return reference.Load() }
