package core_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/rtlbus"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
)

// Regression coverage for the layer-2 wait-state sampling discipline:
// the sample taken when a request is created (the paper's
// first-interface-call contract) is deliberately discarded, and the
// authoritative count — which also drives the idle-skip scheduling
// hint — comes exclusively from the re-sample at address-phase start.
// A creation-time sample stored into the countdown could be stale by
// the time the address phase starts when an EEPROM/Flash busy window
// (stretched by a fault plan) opens or closes in between, letting the
// hint overshoot the skip window. These runs pin the optimized path's
// kernel-resume cycles to the reference path under exactly those
// conditions: self-timed busy memories, injected wait storms, and the
// queueing backpressure that delays address phases past creation.

// busyWindowRun runs items at a layer over an EEPROM-backed map wrapped
// in a fault plan and captures cycles plus per-transaction timing.
func busyWindowRun(t *testing.T, layer int, items []core.Item, plan fault.Plan) (cycles uint64, timing string, skipped uint64) {
	t.Helper()
	k := sim.New(0)
	ee := mem.NewEEPROM("ee", 0, 0x8000, k)
	ram := mem.NewRAM("ram", 0x10000, 0x8000, 0, 0)
	mp := ecbus.MustMap(fault.Wrap(ee, plan), fault.Wrap(ram, plan))
	var bus core.Initiator
	switch layer {
	case 0:
		bus = rtlbus.New(k, mp)
	case 1:
		bus = tlm1.New(k, mp)
	default:
		bus = tlm2.New(k, mp)
	}
	m := core.NewScriptMaster(k, bus, items)
	m.Retry = core.RetryPolicy{MaxRetries: 8, Backoff: 1}
	n, _ := k.RunUntil(1_000_000, m.Done)
	if !m.Done() {
		t.Fatalf("layer %d busy-window run did not complete", layer)
	}
	var sb strings.Builder
	for _, tr := range m.Completed() {
		fmt.Fprintf(&sb, "%d:%d/%d/%d/%v/%v/%d\n",
			tr.ID, tr.IssueCycle, tr.AddrCycle, tr.DataCycle, tr.Done, tr.Err, tr.Retries)
	}
	return n, sb.String(), k.SkippedCycles()
}

// busyWindowPlans are the adversarial conditions: pure busy-window
// stretching, stretching plus wait storms, and the full mix with write
// errors forcing retries back into reopened busy windows.
func busyWindowPlans() []fault.Plan {
	return []fault.Plan{
		{BusyStretch: 2},
		{Seed: 0xBADF00D, WaitPermille: 200, MaxExtraWait: 8, BusyStretch: 1},
		{Seed: 0xBADF00D, WaitPermille: 300, MaxExtraWait: 12, BusyStretch: 3, WriteErrPermille: 30},
	}
}

// TestBusyWindowHintRefOpt pins the optimized path's cycle counts and
// per-transaction timing to the reference path on randomized corpora
// against self-timed busy memories under every busy-window plan.
func TestBusyWindowHintRefOpt(t *testing.T) {
	lay2 := core.Layout{Fast: 0, Slow: 0x10000}
	seeds := uint64(30)
	if testing.Short() {
		seeds = 6
	}
	var totalSkipped uint64
	for pi, plan := range busyWindowPlans() {
		for seed := uint64(1); seed <= seeds; seed++ {
			items := core.RandomCorpus(seed, 100, lay2)
			for layer := 0; layer <= 2; layer++ {
				var rn uint64
				var rt string
				withReference(t, func() {
					rn, rt, _ = busyWindowRun(t, layer, core.CloneItems(items), plan)
				})
				on, ot, skipped := busyWindowRun(t, layer, core.CloneItems(items), plan)
				totalSkipped += skipped
				if rn != on || rt != ot {
					t.Errorf("plan %d seed %d layer %d: ref %d cycles, opt %d cycles (skipped %d)",
						pi, seed, layer, rn, on, skipped)
					if rt != ot {
						t.Fatalf("timing diverged:\nref:\n%s\nopt:\n%s", rt, ot)
					}
					return
				}
			}
		}
	}
	if totalSkipped == 0 {
		t.Fatal("optimized path never fast-forwarded — the hint regression is not exercised")
	}
}
