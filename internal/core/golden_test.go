package core_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/gatepower"
	"repro/internal/metrics"
	"repro/internal/rtlbus"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
	"repro/internal/trace"
)

// The golden-equivalence layer: every observable output of a simulation
// must be byte-identical between the reference path (full-scan energy
// models, no idle-cycle skipping) and the optimized path (dirty-mask
// iteration, precomputed tables, ring queues, idle fast-forward).
// Timing fields and cycle counts are compared exactly; energy figures
// are compared as raw IEEE-754 bit patterns, so even a last-ulp drift
// from reordered float arithmetic fails the test.

// goldenCapture is everything observable from one run.
type goldenCapture struct {
	cycles  uint64
	done    bool
	errors  int
	retries int
	timing  string // per-transaction timing fields, in completion order
	energy  string // every energy figure as hex float bits
	trace   string // trace.Save bytes of the recorded transaction stream
	skipped uint64 // diagnostics only, NOT compared
}

func f64bits(v float64) string { return fmt.Sprintf("%016x", math.Float64bits(v)) }

// goldenRun drives items through a fresh platform of the given layer in
// the current reference/optimized mode and captures all outputs.
func goldenRun(t *testing.T, layer int, items []core.Item, char gatepower.CharTable) goldenCapture {
	t.Helper()
	return goldenRunOn(t, layer, items, char, testMap, core.RetryPolicy{})
}

// goldenRunOn is goldenRun over an arbitrary slave map and retry policy,
// so the same capture machinery covers fault-injected runs.
func goldenRunOn(t *testing.T, layer int, items []core.Item, char gatepower.CharTable,
	mp func() *ecbus.Map, retry core.RetryPolicy) goldenCapture {
	t.Helper()
	return goldenRunMetered(t, layer, items, char, mp, retry, nil)
}

// goldenRunMetered is goldenRunOn with an optional metrics registry
// attached to every hook point, so the equivalence suite can assert
// that observability never perturbs a capture.
func goldenRunMetered(t *testing.T, layer int, items []core.Item, char gatepower.CharTable,
	mp func() *ecbus.Map, retry core.RetryPolicy, reg *metrics.Registry) goldenCapture {
	t.Helper()
	k := sim.New(0)
	if reg != nil {
		k.SetRunObserver(reg)
	}
	var bus core.Initiator
	var energy func(sb *strings.Builder)
	var total func() float64
	switch layer {
	case 0:
		b := rtlbus.New(k, mp())
		est := gatepower.NewEstimator(gatepower.DefaultConfig())
		k.AtObserver(sim.Post, "gp", func(uint64) { est.Observe(b.Wires()) }, est.ObserveIdle)
		if reg != nil {
			b.AttachMetrics(k, reg, est.TotalEnergy)
		}
		bus = b
		total = est.TotalEnergy
		energy = func(sb *strings.Builder) {
			sb.WriteString(f64bits(est.TotalEnergy()))
			sb.WriteString(f64bits(est.InterfaceEnergy()))
			fmt.Fprintf(sb, "cycles=%d", est.Cycles())
			bd := est.Breakdown()
			sb.WriteString(bd.String())
			ct := est.Char()
			for id := ecbus.SignalID(0); id < ecbus.NumSignals; id++ {
				sb.WriteString(f64bits(ct.PerTransitionJ[id]))
				st := est.SignalStats(id)
				fmt.Fprintf(sb, "r%d f%d ", st.Rises, st.Falls)
			}
		}
	case 1:
		b := tlm1.New(k, mp()).AttachPower(tlm1.NewPowerModel(char))
		if reg != nil {
			b.AttachMetrics(reg)
		}
		bus = b
		total = b.Power().TotalEnergy
		energy = func(sb *strings.Builder) {
			p := b.Power()
			sb.WriteString(f64bits(p.TotalEnergy()))
			sb.WriteString(f64bits(p.EnergyLastCycle()))
			fmt.Fprintf(sb, "tr=%d", p.Transitions())
		}
	default:
		b := tlm2.New(k, mp()).AttachPower(tlm2.NewPowerModel(char))
		if reg != nil {
			b.AttachMetrics(reg)
		}
		bus = b
		total = b.Power().TotalEnergy
		energy = func(sb *strings.Builder) {
			p := b.Power()
			sb.WriteString(f64bits(p.TotalEnergy()))
			a, d := p.Phases()
			fmt.Fprintf(sb, "a=%d d=%d", a, d)
		}
	}

	rec := trace.NewRecorder(bus)
	m := core.NewScriptMaster(k, rec, items)
	m.Retry = retry
	m.Metrics = reg
	n, _ := k.RunUntil(1_000_000, m.Done)
	if reg != nil {
		reg.Finalize(total())
	}

	var cap goldenCapture
	cap.cycles = n
	cap.done = m.Done()
	cap.errors = m.Errors()
	cap.retries = m.TotalRetries()
	cap.skipped = k.SkippedCycles()

	var tb strings.Builder
	for _, tr := range m.Completed() {
		fmt.Fprintf(&tb, "%d:%d/%d/%d/%v/%v\n",
			tr.ID, tr.IssueCycle, tr.AddrCycle, tr.DataCycle, tr.Done, tr.Err)
	}
	cap.timing = tb.String()

	var eb strings.Builder
	energy(&eb)
	cap.energy = eb.String()

	var sb strings.Builder
	if err := trace.Save(&sb, rec.Records()); err != nil {
		t.Fatalf("trace save: %v", err)
	}
	cap.trace = sb.String()
	return cap
}

// withReference runs fn with the reference path selected, restoring the
// optimized default afterwards even on test failure.
func withReference(t *testing.T, fn func()) {
	t.Helper()
	core.SetReference(true)
	defer core.SetReference(false)
	fn()
}

func goldenCorpora() map[string][]core.Item {
	c := map[string][]core.Item{
		"verification": core.VerificationCorpus(lay),
		"perf":         core.PerfCorpus(lay, 256),
		"char":         core.CharCorpus(lay, 120),
	}
	for seed := uint64(1); seed <= 4; seed++ {
		c[fmt.Sprintf("random-%d", seed)] = core.RandomCorpus(seed, 200, lay)
	}
	return c
}

// TestGoldenEquivalence runs the full corpus matrix through every layer
// in both modes and requires byte-identical captures.
func TestGoldenEquivalence(t *testing.T) {
	char := characterize(t)
	for name, items := range goldenCorpora() {
		for layer := 0; layer <= 2; layer++ {
			t.Run(fmt.Sprintf("%s/layer%d", name, layer), func(t *testing.T) {
				var ref goldenCapture
				withReference(t, func() {
					ref = goldenRun(t, layer, core.CloneItems(items), char)
				})
				opt := goldenRun(t, layer, core.CloneItems(items), char)

				if !ref.done || !opt.done {
					t.Fatalf("incomplete run: ref=%v opt=%v", ref.done, opt.done)
				}
				if ref.cycles != opt.cycles {
					t.Errorf("cycles: ref %d, opt %d (opt skipped %d)", ref.cycles, opt.cycles, opt.skipped)
				}
				if ref.errors != opt.errors {
					t.Errorf("errors: ref %d, opt %d", ref.errors, opt.errors)
				}
				if ref.timing != opt.timing {
					t.Errorf("transaction timing diverged:\nref:\n%s\nopt:\n%s", ref.timing, opt.timing)
				}
				if ref.energy != opt.energy {
					t.Errorf("energy bits diverged:\nref: %s\nopt: %s", ref.energy, opt.energy)
				}
				if ref.trace != opt.trace {
					t.Errorf("trace bytes diverged")
				}
				if ref.skipped != 0 {
					t.Errorf("reference path skipped %d cycles; must execute every cycle", ref.skipped)
				}
			})
		}
	}
}

// TestGoldenVCDEquivalence compares full per-cycle VCD wire dumps of the
// layer-0 model between modes. Attaching a VCD writer (an unhinted proc)
// pins the kernel to cycle-by-cycle execution, so this isolates the
// dirty-mask estimator and Bundle plumbing from idle skipping.
func TestGoldenVCDEquivalence(t *testing.T) {
	items := core.VerificationCorpus(lay)
	run := func() string {
		k := sim.New(0)
		b := rtlbus.New(k, testMap())
		var sb strings.Builder
		v := trace.NewVCD(&sb)
		k.At(sim.Post, "vcd", func(uint64) { v.Observe(b.Wires()) })
		m, _ := core.RunScript(k, b, core.CloneItems(items), 1_000_000)
		if !m.Done() {
			t.Fatal("run incomplete")
		}
		if err := v.Close(); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	var ref string
	withReference(t, func() { ref = run() })
	opt := run()
	if ref != opt {
		t.Fatal("VCD dumps differ between reference and optimized modes")
	}
}

// TestGoldenIdleSkipActuallySkips guards the performance property: on a
// corpus with idle gaps and wait states, the optimized path must
// fast-forward a nonzero number of cycles (otherwise the equivalence
// above is vacuous for the skip machinery).
func TestGoldenIdleSkipActuallySkips(t *testing.T) {
	char := characterize(t)
	for layer := 0; layer <= 2; layer++ {
		c := goldenRun(t, layer, core.VerificationCorpus(lay), char)
		if c.skipped == 0 {
			t.Errorf("layer %d: no cycles skipped on the verification corpus", layer)
		}
	}
}
