package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/javacard"
	"repro/internal/serve"
)

// swapHandler lets an httptest.Server start (and yield its URL) before
// the Node that will serve it exists.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	if h == nil {
		http.Error(w, "node not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// testCluster is a set of in-process nodes wired as full-mesh peers.
type testCluster struct {
	nodes []*Node
	srvs  []*serve.Server
	hts   []*httptest.Server
	urls  []string
}

func (tc *testCluster) close() {
	for _, n := range tc.nodes {
		if n != nil {
			n.Close()
		}
	}
	for _, ht := range tc.hts {
		if ht != nil {
			ht.Close()
		}
	}
	for _, s := range tc.srvs {
		if s != nil {
			s.Close()
		}
	}
}

// startCluster brings up count nodes. tweak (optional) edits each
// node's Options before New; hook (optional) installs a compute hook
// on each serve.Server.
func startCluster(t *testing.T, count int, tweak func(i int, o *Options), hook func(i int) func(string)) *testCluster {
	t.Helper()
	tc := &testCluster{}
	swaps := make([]*swapHandler, count)
	for i := 0; i < count; i++ {
		swaps[i] = &swapHandler{}
		tc.hts = append(tc.hts, httptest.NewServer(swaps[i]))
		tc.urls = append(tc.urls, tc.hts[i].URL)
	}
	for i := 0; i < count; i++ {
		srv := serve.New(serve.Options{Workers: 2, QueueDepth: 8, SweepWorkers: 1})
		if hook != nil {
			if h := hook(i); h != nil {
				srv.SetComputeHook(h)
			}
		}
		tc.srvs = append(tc.srvs, srv)
		var peers []string
		for j, u := range tc.urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		opts := Options{
			Self:  tc.urls[i],
			Peers: peers,
			// Membership stays static unless a request fails hard —
			// probe-driven transitions get their own dedicated test.
			ProbeInterval:   time.Hour,
			FailThreshold:   2,
			SelfConcurrency: 2,
			PeerConcurrency: 2,
		}
		if tweak != nil {
			tweak(i, &opts)
		}
		node := New(srv, opts)
		tc.nodes = append(tc.nodes, node)
		swaps[i].set(node.Handler())
	}
	t.Cleanup(tc.close)
	return tc
}

// post sends a JSON request to a node and returns status, body and the
// response headers.
func post(t *testing.T, url, path string, req any, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+path, bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hreq.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, body, resp.Header
}

// singleNodeBody computes a request's reference bytes on a fresh
// standalone server — what the cluster must reproduce byte-for-byte.
func singleNodeBody(t *testing.T, path string, req any) []byte {
	t.Helper()
	srv := serve.New(serve.Options{Workers: 2, SweepWorkers: 1})
	defer srv.Close()
	ht := httptest.NewServer(srv.Handler())
	defer ht.Close()
	status, body, _ := post(t, ht.URL, path, req, nil)
	if status != http.StatusOK {
		t.Fatalf("single-node %s: status %d: %s", path, status, body)
	}
	return body
}

func smallSweep() serve.SweepRequest {
	return serve.SweepRequest{
		Layers:    []int{1},
		Orgs:      []string{javacard.Organizations[0].String(), javacard.Organizations[1].String()},
		AddrMaps:  []string{"near", "far"},
		Workloads: []string{"arith-loop"},
	}
}

// TestClusterByteEquivalence is the headline contract: a 2-node
// cluster answers estimate, sweep and batch with bytes identical to a
// single standalone node — IEEE-754 energy bit patterns included.
func TestClusterByteEquivalence(t *testing.T) {
	tc := startCluster(t, 2, nil, nil)
	cases := []struct {
		path string
		req  any
	}{
		{"/v1/estimate", serve.EstimateRequest{Layer: 1, N: 64}},
		{"/v1/sweep", smallSweep()},
		{"/v1/batch", serve.BatchRequest{Layer: 0, Runs: 4, N: 32}},
	}
	for _, c := range cases {
		want := singleNodeBody(t, c.path, c.req)
		for i, url := range tc.urls {
			status, got, hdr := post(t, url, c.path, c.req, nil)
			if status != http.StatusOK {
				t.Fatalf("%s via node %d: status %d: %s", c.path, i, status, got)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s via node %d: body differs from single-node reference\n got: %q\nwant: %q",
					c.path, i, got, want)
			}
			if hdr.Get("X-Cache") == "" {
				t.Errorf("%s via node %d: missing X-Cache header", c.path, i)
			}
		}
	}
}

// TestPeerCacheReplay pins the two-tier cache behavior: once the key's
// owner holds the bytes, the other node serves them via a peer fetch
// (X-Cache "peer"), and from then on replays its local copy ("hit") —
// verbatim both times.
func TestPeerCacheReplay(t *testing.T) {
	tc := startCluster(t, 2, nil, nil)
	req := serve.EstimateRequest{Layer: 0, N: 48}
	key, err := serve.EstimateKey(req)
	if err != nil {
		t.Fatal(err)
	}
	// Find the owner and the non-owner of this key.
	ownerURL := tc.nodes[0].owner(key)
	nonOwner := tc.urls[0]
	if nonOwner == ownerURL {
		nonOwner = tc.urls[1]
	}
	status, want, _ := post(t, ownerURL, "/v1/estimate", req, nil)
	if status != http.StatusOK {
		t.Fatalf("owner compute: status %d: %s", status, want)
	}
	status, got, hdr := post(t, nonOwner, "/v1/estimate", req, nil)
	if status != http.StatusOK {
		t.Fatalf("peer fetch: status %d: %s", status, got)
	}
	if hdr.Get("X-Cache") != "peer" {
		t.Fatalf("first non-owner request: X-Cache = %q, want \"peer\"", hdr.Get("X-Cache"))
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("peer-fetched body differs from owner's bytes")
	}
	status, got2, hdr2 := post(t, nonOwner, "/v1/estimate", req, nil)
	if status != http.StatusOK {
		t.Fatalf("local replay: status %d: %s", status, got2)
	}
	if hdr2.Get("X-Cache") != "hit" {
		t.Fatalf("second non-owner request: X-Cache = %q, want \"hit\"", hdr2.Get("X-Cache"))
	}
	if !bytes.Equal(got2, want) {
		t.Fatalf("locally replayed body differs from owner's bytes")
	}
	snap := tc.nodes[0].srv.Stats()
	snap2 := tc.nodes[1].srv.Stats()
	if snap.PeerFetches+snap2.PeerFetches == 0 {
		t.Fatalf("no PeerFetches recorded anywhere")
	}
}

// TestKillNodeMidSweep is the no-lost-work guarantee: a peer dying
// while holding stolen sweep configurations delays the sweep, never
// drops rows. Node B's config computes are gated so the kill lands
// while B provably holds work; the sweep must still complete with
// bytes identical to a single node, and the requeue must be counted.
func TestKillNodeMidSweep(t *testing.T) {
	gate := make(chan struct{})
	var started sync.Once
	startedCh := make(chan struct{})
	tc := startCluster(t, 2,
		func(i int, o *Options) {
			if i == 0 {
				o.SelfConcurrency = 1
				o.PeerConcurrency = 1
			}
		},
		func(i int) func(string) {
			if i != 1 {
				return nil
			}
			return func(kind string) {
				if kind != "config" {
					return
				}
				started.Do(func() { close(startedCh) })
				<-gate
			}
		})

	req := smallSweep() // 4 configurations
	want := singleNodeBody(t, "/v1/sweep", req)

	type result struct {
		status int
		body   []byte
	}
	resCh := make(chan result, 1)
	go func() {
		// The forward header pins node A as the coordinator regardless
		// of which node rendezvous hashing would pick as owner.
		status, body, _ := post(t, tc.urls[0], "/v1/sweep", req, map[string]string{
			forwardHeader: "1",
			versionHeader: VersionTag(),
		})
		resCh <- result{status, body}
	}()

	// Wait until node B demonstrably holds at least one configuration,
	// then kill it: first the connections (node A's in-flight fetch
	// fails), then the gate (B's worker unblocks so shutdown can run).
	select {
	case <-startedCh:
	case <-time.After(10 * time.Second):
		t.Fatal("node B never started a config compute")
	}
	tc.hts[1].CloseClientConnections()
	close(gate)

	var res result
	select {
	case res = <-resCh:
	case <-time.After(30 * time.Second):
		t.Fatal("sweep did not complete after peer death")
	}
	if res.status != http.StatusOK {
		t.Fatalf("sweep after peer death: status %d: %s", res.status, res.body)
	}
	if !bytes.Equal(res.body, want) {
		t.Errorf("sweep body after peer death differs from single-node reference\n got: %q\nwant: %q",
			res.body, want)
	}
	if snap := tc.srvs[0].Stats(); snap.Requeues == 0 {
		t.Errorf("coordinator recorded no requeues; want >= 1")
	}
}

// TestOwnerDeterministic: every node with the same live view picks the
// same owner for a key, and distinct keys spread across nodes.
func TestOwnerDeterministic(t *testing.T) {
	tc := startCluster(t, 3, nil, nil)
	owners := map[string]bool{}
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("key-%d", i)
		want := tc.nodes[0].owner(key)
		owners[want] = true
		for j, n := range tc.nodes[1:] {
			if got := n.owner(key); got != want {
				t.Fatalf("node %d disagrees on owner of %q: %q vs %q", j+1, key, got, want)
			}
		}
	}
	if len(owners) < 2 {
		t.Errorf("32 keys all landed on one node; rendezvous spread broken")
	}
}

// TestVersionMismatch: a request stamped with a foreign version tag is
// refused with 412 — mixed-version peers must not exchange bytes.
func TestVersionMismatch(t *testing.T) {
	tc := startCluster(t, 1, nil, nil)
	status, body, _ := post(t, tc.urls[0], "/v1/estimate",
		serve.EstimateRequest{Layer: 0}, map[string]string{versionHeader: "ecserve/0+calib/0"})
	if status != http.StatusPreconditionFailed {
		t.Fatalf("foreign version: status %d, want 412: %s", status, body)
	}
	// The matching tag passes.
	status, _, _ = post(t, tc.urls[0], "/v1/estimate",
		serve.EstimateRequest{Layer: 0}, map[string]string{versionHeader: VersionTag()})
	if status != http.StatusOK {
		t.Fatalf("matching version: status %d, want 200", status)
	}
}

// TestBadRequestRouted: canonicalization failures answer 400 at the
// entry node without any peer traffic.
func TestBadRequestRouted(t *testing.T) {
	tc := startCluster(t, 2, nil, nil)
	cases := []struct {
		path string
		req  any
	}{
		{"/v1/estimate", serve.EstimateRequest{Layer: 9}},
		{"/v1/batch", serve.BatchRequest{Layer: 7}},
		{"/v1/sweep", serve.SweepRequest{Layers: []int{99}}},
		{"/v1/config", serve.ConfigRequest{Workload: "nope", Layer: 1, Org: "x", AddrMap: "near"}},
	}
	for _, c := range cases {
		status, body, _ := post(t, tc.urls[0], c.path, c.req, nil)
		if status != http.StatusBadRequest {
			t.Errorf("%s invalid request: status %d, want 400: %s", c.path, status, body)
		}
	}
}

// TestDeadPeerFallsBackLocally: with its only peer down, a node serves
// every keyed request itself — the cluster degrades to a single node
// rather than failing requests whose owner is unreachable.
func TestDeadPeerFallsBackLocally(t *testing.T) {
	tc := startCluster(t, 2, nil, nil)
	tc.hts[1].Close() // peer down before any traffic
	for i := 0; i < 8; i++ {
		req := serve.EstimateRequest{Layer: 1, N: 32 + i}
		status, body, _ := post(t, tc.urls[0], "/v1/estimate", req, nil)
		if status != http.StatusOK {
			t.Fatalf("estimate %d with dead peer: status %d: %s", i, status, body)
		}
	}
	// Sweeps distribute only over live peers; with none, they compute
	// locally and still match the reference.
	req := smallSweep()
	want := singleNodeBody(t, "/v1/sweep", req)
	status, got, _ := post(t, tc.urls[0], "/v1/sweep", req, nil)
	if status != http.StatusOK {
		t.Fatalf("sweep with dead peer: status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("sweep with dead peer differs from single-node reference")
	}
}

// TestProbeMarksDeadAndRevives exercises the membership lifecycle:
// probes mark a stopped peer dead after FailThreshold failures, and a
// single success revives it.
func TestProbeMarksDeadAndRevives(t *testing.T) {
	up := true
	var mu sync.Mutex
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ok := up
		mu.Unlock()
		if !ok {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer peer.Close()
	srv := serve.New(serve.Options{Workers: 1})
	defer srv.Close()
	n := New(srv, Options{
		Self:          "http://self.invalid",
		Peers:         []string{peer.URL},
		ProbeInterval: 20 * time.Millisecond,
		FailThreshold: 2,
	})
	defer n.Close()

	waitFor := func(want int, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if len(n.alivePeers()) == want {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("peer never became %s", what)
	}
	waitFor(1, "alive")
	mu.Lock()
	up = false
	mu.Unlock()
	waitFor(0, "dead")
	mu.Lock()
	up = true
	mu.Unlock()
	waitFor(1, "alive again")
}

// TestMetriczClusterSection: the cluster node's /metricz keeps the
// serve layer's table and appends the membership view.
func TestMetriczClusterSection(t *testing.T) {
	tc := startCluster(t, 2, nil, nil)
	// Drive one peer fetch so the cluster counter line renders.
	req := serve.EstimateRequest{Layer: 0, N: 40}
	key, err := serve.EstimateKey(req)
	if err != nil {
		t.Fatal(err)
	}
	ownerURL := tc.nodes[0].owner(key)
	nonOwner := tc.urls[0]
	if nonOwner == ownerURL {
		nonOwner = tc.urls[1]
	}
	post(t, ownerURL, "/v1/estimate", req, nil)
	post(t, nonOwner, "/v1/estimate", req, nil)

	resp, err := http.Get(nonOwner + "/metricz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{"nodes", "peer ", "cluster", "peer-fetch"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metricz missing %q:\n%s", want, text)
		}
	}
}

// TestTruncatedPeerBodyFallsBack: a peer answering 200 with a cut-off
// NDJSON body must not poison the requester — the truncation is
// detected, the bytes are discarded and the node computes locally.
func TestTruncatedPeerBodyFallsBack(t *testing.T) {
	// A fake "owner" that always answers truncated bytes.
	var mu sync.Mutex
	var truncated []byte
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte(`{"ok":true}`))
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		mu.Lock()
		body := truncated
		mu.Unlock()
		w.Write(body)
	}))
	defer fake.Close()

	srv := serve.New(serve.Options{Workers: 2})
	defer srv.Close()
	n := New(srv, Options{Self: "http://self.invalid", Peers: []string{fake.URL}, ProbeInterval: time.Hour})
	defer n.Close()
	ht := httptest.NewServer(n.Handler())
	defer ht.Close()

	// Pick a batch request whose key the fake peer owns, so the fetch
	// path is exercised deterministically regardless of port numbers.
	var req serve.BatchRequest
	found := false
	for nn := 16; nn < 64 && !found; nn++ {
		cand := serve.BatchRequest{Layer: 0, Runs: 3, N: nn}
		key, err := serve.BatchKey(cand)
		if err != nil {
			t.Fatal(err)
		}
		if n.owner(key) == fake.URL {
			req, found = cand, true
		}
	}
	if !found {
		t.Fatal("no candidate key owned by the fake peer (rendezvous spread broken)")
	}
	want := singleNodeBody(t, "/v1/batch", req)
	mu.Lock()
	truncated = want[:len(want)/2]
	mu.Unlock()

	status, got, _ := post(t, ht.URL, "/v1/batch", req, nil)
	if status != http.StatusOK {
		t.Fatalf("batch via truncating peer: status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("local fallback after truncated peer body produced wrong bytes")
	}
	if snap := srv.Stats(); snap.PeerErrors == 0 {
		t.Errorf("truncated peer body recorded no PeerErrors")
	}
}
