// Package cluster scales the estimation service to multiple nodes. It
// wraps a serve.Server with a routing layer that turns the existing
// SHA-256 content address of every request into a shard key:
// rendezvous (highest-random-weight) hashing over the live node set
// picks each key's owner, so identical requests from any entry node
// converge on one compute and one cache entry.
//
// The cache becomes two-tier: a request is answered from the local LRU
// if the bytes are already here, else fetched from the owning peer
// (and inserted locally, so the bytes replay from here on), else
// computed. Because results are content-addressed bytes of a
// deterministic computation, a body computed anywhere is replayed
// byte-for-byte everywhere; forwarded responses are copied verbatim,
// never re-rendered, and both code versions (serve and calibration)
// ride in every peer request so mixed-version nodes refuse each
// other's bytes instead of mixing them.
//
// Exhaustive sweeps are additionally distributed: the owner splits the
// cross product into per-configuration /v1/config requests and fans
// them out work-stealing style across itself and every live peer (see
// sweep.go). Membership is a static peer list plus health probes — a
// dead peer drops out of the ownership set and its in-flight
// configurations are requeued, so a node dying mid-sweep delays the
// sweep instead of failing it.
package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/calib"
	"repro/internal/metrics"
	"repro/internal/serve"
)

// Peer-protocol headers. Forward marks a request already routed once —
// the receiver serves it locally, which bounds any route to one hop.
// Version carries both code versions; a mismatch answers 412 and the
// sender falls back to computing locally.
const (
	forwardHeader = "X-EC-Forward"
	versionHeader = "X-EC-Version"
	nodeHeader    = "X-EC-Node"
)

// VersionTag is the compatibility stamp exchanged between peers. Both
// components are already folded into every content hash, so agreeing
// on the tag is exactly agreeing on the address space.
func VersionTag() string { return serve.Version + "+" + calib.Version }

// Options tunes a cluster node.
type Options struct {
	// Self is this node's advertised base URL (how peers reach it).
	Self string
	// Peers are the other nodes' base URLs — the static membership.
	Peers []string
	// ProbeInterval paces the health prober; <= 0 selects 250ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe; <= 0 selects 1s.
	ProbeTimeout time.Duration
	// FailThreshold is the consecutive probe failures that mark a peer
	// dead; <= 0 selects 2. A hard connection error on a real request
	// marks the peer dead immediately.
	FailThreshold int
	// SelfConcurrency is the local lane width of a distributed sweep;
	// <= 0 selects runtime.GOMAXPROCS(0).
	SelfConcurrency int
	// PeerConcurrency is the per-peer lane width of a distributed
	// sweep; <= 0 selects 4.
	PeerConcurrency int
	// DisableDistribution turns off sweep fan-out (ownership routing
	// and the two-tier cache still apply).
	DisableDistribution bool
	// HTTPClient overrides the peer-traffic client.
	HTTPClient *http.Client
}

// Node is one member of the estimation cluster: a serve.Server plus
// the routing, peer-cache and work-stealing layers.
type Node struct {
	srv    *serve.Server
	opts   Options
	peers  []string // normalized, self excluded
	mux    *http.ServeMux
	client *http.Client

	mu    sync.Mutex
	alive map[string]bool
	fails map[string]int

	stop     chan struct{}
	stopOnce sync.Once
	probeWg  sync.WaitGroup
}

// normalizeURL canonicalizes a node URL for identity comparison.
func normalizeURL(u string) string {
	u = strings.TrimSpace(strings.TrimRight(u, "/"))
	if u != "" && !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u
}

// New wraps srv in a cluster node and starts its health probers. Call
// Close to stop them (the serve.Server stays the caller's to close).
func New(srv *serve.Server, opts Options) *Node {
	opts.Self = normalizeURL(opts.Self)
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 250 * time.Millisecond
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = time.Second
	}
	if opts.FailThreshold <= 0 {
		opts.FailThreshold = 2
	}
	if opts.SelfConcurrency <= 0 {
		opts.SelfConcurrency = runtime.GOMAXPROCS(0)
	}
	if opts.PeerConcurrency <= 0 {
		opts.PeerConcurrency = 4
	}
	n := &Node{
		srv:    srv,
		opts:   opts,
		client: opts.HTTPClient,
		alive:  make(map[string]bool),
		fails:  make(map[string]int),
		stop:   make(chan struct{}),
	}
	if n.client == nil {
		n.client = &http.Client{}
	}
	seen := map[string]bool{opts.Self: true}
	for _, p := range opts.Peers {
		p = normalizeURL(p)
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		n.peers = append(n.peers, p)
		// Optimistic until the prober says otherwise: a wrongly-assumed
		// peer costs one failed fetch and a local fallback, while a
		// wrongly-ignored one costs cache locality for a probe round.
		n.alive[p] = true
	}
	sort.Strings(n.peers)

	n.mux = http.NewServeMux()
	n.mux.HandleFunc("POST /v1/estimate", func(w http.ResponseWriter, r *http.Request) {
		n.handleKeyed(w, r, "estimate", "/v1/estimate")
	})
	n.mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		n.handleKeyed(w, r, "batch", "/v1/batch")
	})
	n.mux.HandleFunc("POST /v1/config", func(w http.ResponseWriter, r *http.Request) {
		n.handleKeyed(w, r, "config", "/v1/config")
	})
	n.mux.HandleFunc("POST /v1/sweep", n.handleSweep)
	n.mux.HandleFunc("GET /metricz", n.handleMetricz)
	n.mux.Handle("/", srv.Handler())

	for _, p := range n.peers {
		n.probeWg.Add(1)
		go n.probe(p)
	}
	return n
}

// Handler returns the node's routing HTTP handler.
func (n *Node) Handler() http.Handler { return n.mux }

// Close stops the health probers.
func (n *Node) Close() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.probeWg.Wait()
}

func (n *Node) reg() *metrics.ServerRegistry { return n.srv.Registry() }

// probe watches one peer: FailThreshold consecutive failed health
// checks mark it dead, one success resurrects it — node leave and
// rejoin without gossip.
func (n *Node) probe(peer string) {
	defer n.probeWg.Done()
	t := time.NewTicker(n.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), n.opts.ProbeTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil)
		ok := false
		if err == nil {
			resp, rerr := n.client.Do(req)
			if rerr == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				ok = resp.StatusCode == http.StatusOK
			}
		}
		cancel()
		n.mu.Lock()
		if ok {
			n.fails[peer] = 0
			n.alive[peer] = true
		} else {
			n.fails[peer]++
			if n.fails[peer] >= n.opts.FailThreshold {
				n.alive[peer] = false
			}
		}
		n.mu.Unlock()
	}
}

// markDead records a hard request failure against a peer: routing
// stops trusting it immediately, the prober decides when it is back.
func (n *Node) markDead(peer string) {
	n.mu.Lock()
	n.fails[peer] = n.opts.FailThreshold
	n.alive[peer] = false
	n.mu.Unlock()
}

// alivePeers snapshots the peers currently believed healthy.
func (n *Node) alivePeers() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []string
	for _, p := range n.peers {
		if n.alive[p] {
			out = append(out, p)
		}
	}
	return out
}

// owner picks a key's owning node by rendezvous hashing over self plus
// the live peers: every node scores hash(node ‖ key) and the highest
// score wins. All nodes with the same live view agree without
// coordination, and a node joining or leaving only moves the keys it
// wins or held — no ring to rebuild. Divergent views during a failure
// transition merely cost cache locality: any node can compute any key.
func (n *Node) owner(key string) string {
	best, bestScore := n.opts.Self, rendezvousScore(n.opts.Self, key)
	for _, p := range n.alivePeers() {
		if s := rendezvousScore(p, key); s > bestScore || (s == bestScore && p > best) {
			best, bestScore = p, s
		}
	}
	return best
}

// rendezvousScore must mix node and key thoroughly: with a weak hash
// (FNV-style multiply-xor), same-length keys produce rank-correlated
// scores across nodes and whole request families land on one owner.
// SHA-256 of node ‖ key gives independent per-(node, key) scores; the
// cost is nanoseconds on the routing path.
func rendezvousScore(node, key string) uint64 {
	h := sha256.New()
	h.Write([]byte(node))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return binary.BigEndian.Uint64(h.Sum(nil))
}

// respondError mirrors the serve layer's JSON error body.
func respondError(w http.ResponseWriter, status int, err error) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// contentTypeFor returns an endpoint's response content type.
func contentTypeFor(kind string) string {
	if kind == "estimate" {
		return "application/json"
	}
	return "application/x-ndjson"
}

// writeBody serves result bytes verbatim with the cache verdict and
// the node that supplied them.
func (n *Node) writeBody(w http.ResponseWriter, kind, key, verdict, from string, body []byte) {
	w.Header().Set("Content-Type", contentTypeFor(kind))
	w.Header().Set("X-Cache", verdict)
	w.Header().Set("X-Key", key)
	w.Header().Set(nodeHeader, from)
	w.Write(body)
}

// readRequest drains the request body and enforces the peer version
// guard. A false return means the response is already written.
func (n *Node) readRequest(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	if v := r.Header.Get(versionHeader); v != "" && v != VersionTag() {
		respondError(w, http.StatusPreconditionFailed,
			fmt.Errorf("cluster: peer version %q incompatible with %q", v, VersionTag()))
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		respondError(w, http.StatusBadRequest, fmt.Errorf("cluster: bad request body: %w", err))
		return nil, false
	}
	return body, true
}

// keyFor computes the content address of a keyed endpoint's request
// body — the same canonicalization its local handler would apply, so
// an invalid request answers 400 here without a network hop.
func keyFor(kind string, body []byte) (string, error) {
	switch kind {
	case "estimate":
		var req serve.EstimateRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return "", fmt.Errorf("serve: bad request body: %w", err)
		}
		return serve.EstimateKey(req)
	case "batch":
		var req serve.BatchRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return "", fmt.Errorf("serve: bad request body: %w", err)
		}
		return serve.BatchKey(req)
	case "config":
		var req serve.ConfigRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return "", fmt.Errorf("serve: bad request body: %w", err)
		}
		return serve.ConfigKey(req)
	}
	return "", fmt.Errorf("cluster: unroutable endpoint %q", kind)
}

// delegate hands the request to the local serve.Server with its body
// restored.
func (n *Node) delegate(w http.ResponseWriter, r *http.Request, body []byte) {
	r.Body = io.NopCloser(bytes.NewReader(body))
	r.ContentLength = int64(len(body))
	n.srv.Handler().ServeHTTP(w, r)
}

// handleKeyed is the routing path shared by /v1/estimate, /v1/batch
// and /v1/config: local cache tier, then ownership routing with a
// peer fetch, then local compute.
func (n *Node) handleKeyed(w http.ResponseWriter, r *http.Request, kind, path string) {
	body, ok := n.readRequest(w, r)
	if !ok {
		return
	}
	forwarded := r.Header.Get(forwardHeader) != ""
	if forwarded && kind == "config" {
		// A forwarded configuration is one unit of a remote
		// coordinator's sweep landing on our queue — a steal.
		n.reg().Steal()
	}
	key, err := keyFor(kind, body)
	if err != nil {
		n.reg().Request(kind)
		respondError(w, http.StatusBadRequest, err)
		return
	}
	// Tier 1: the local cache replays its bytes no matter who computed
	// them.
	if cached, ok := n.srv.CacheGet(key); ok {
		n.reg().Request(kind)
		n.reg().Outcome(kind, metrics.ServeHit, 0)
		n.writeBody(w, kind, key, "hit", n.opts.Self, cached)
		return
	}
	owner := n.owner(key)
	if forwarded || owner == n.opts.Self {
		n.delegate(w, r, body)
		return
	}
	// Tier 2: fetch from the owner; its response bytes are relayed and
	// cached verbatim.
	if n.tryPeerFetch(w, r.Context(), kind, path, key, owner, body) {
		return
	}
	// Tier 3: compute locally.
	n.delegate(w, r, body)
}

// tryPeerFetch forwards the request to the owning peer. It reports
// true when a response has been written: a successful fetch (relayed
// verbatim and inserted into the local tier), a deterministic client
// error from the peer (relayed — recomputing locally cannot fix a bad
// request), or a corrupt body (502, fail fast). Truncated bodies,
// network errors, 5xx, version mismatches and peer backpressure all
// return false: retry elsewhere, which here means the local compute
// fallback.
func (n *Node) tryPeerFetch(w http.ResponseWriter, ctx context.Context, kind, path, key, owner string, body []byte) bool {
	resp, peerBody, err := n.forward(ctx, owner, path, body)
	if err != nil {
		n.reg().PeerError()
		n.markDead(owner)
		return false
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		if err := validateStream(kind, peerBody); err != nil {
			n.reg().PeerError()
			if errors.Is(err, serve.ErrTruncatedBody) {
				return false // retry elsewhere: fall back to local compute
			}
			respondError(w, http.StatusBadGateway,
				fmt.Errorf("cluster: corrupt body from %s: %w", owner, err))
			return true
		}
		n.srv.CachePut(key, peerBody)
		n.reg().Request(kind)
		n.reg().PeerFetch()
		n.reg().Outcome(kind, metrics.ServeHit, 0)
		n.writeBody(w, kind, key, "peer", owner, peerBody)
		return true
	case resp.StatusCode >= 400 && resp.StatusCode < 500 &&
		resp.StatusCode != http.StatusTooManyRequests &&
		resp.StatusCode != http.StatusRequestTimeout &&
		resp.StatusCode != http.StatusPreconditionFailed:
		// Deterministic request errors (400 vocabulary violations)
		// relay as-is; backpressure and version mismatch fall through
		// to the local fallback instead.
		n.reg().Request(kind)
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.Header().Set(nodeHeader, owner)
		w.WriteHeader(resp.StatusCode)
		w.Write(peerBody)
		return true
	default:
		if resp.StatusCode >= 500 {
			n.reg().PeerError()
			n.markDead(owner)
		}
		return false
	}
}

// validateStream checks that a fetched NDJSON body carries its trailer
// before the bytes are cached or relayed — the ErrTruncatedBody
// distinction is what lets the cluster retry a cut-off transfer
// elsewhere while failing fast on corruption.
func validateStream(kind string, body []byte) error {
	switch kind {
	case "sweep":
		_, _, err := serve.ParseSweepBody(body)
		return err
	case "batch":
		_, _, err := serve.ParseBatchBody(body)
		return err
	case "config":
		if len(body) == 0 || body[len(body)-1] != '\n' {
			return fmt.Errorf("config row: %w", serve.ErrTruncatedBody)
		}
		return nil
	default: // estimate: a single JSON document
		var probe serve.EstimateResponse
		if err := json.Unmarshal(body, &probe); err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) || len(bytes.TrimSpace(body)) == 0 {
				return fmt.Errorf("estimate body: %w", serve.ErrTruncatedBody)
			}
			return err
		}
		return nil
	}
}

// forward posts a request body to a peer with the cluster headers.
func (n *Node) forward(ctx context.Context, peer, path string, body []byte) (*http.Response, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+path, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardHeader, "1")
	req.Header.Set(versionHeader, VersionTag())
	req.Header.Set(nodeHeader, n.opts.Self)
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	peerBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, peerBody, nil
}

// handleMetricz appends the cluster membership view to the serve
// layer's /metricz page (the peer-fetch/steal/requeue counters render
// inside the registry table itself).
func (n *Node) handleMetricz(w http.ResponseWriter, r *http.Request) {
	n.srv.Handler().ServeHTTP(w, r)
	alive := n.alivePeers()
	fmt.Fprintf(w, "  nodes         self=%s peers=%d alive=%d\n", n.opts.Self, len(n.peers), len(alive))
	for _, p := range n.peers {
		state := "dead"
		n.mu.Lock()
		if n.alive[p] {
			state = "alive"
		}
		n.mu.Unlock()
		fmt.Fprintf(w, "  peer          %s %s\n", p, state)
	}
}
