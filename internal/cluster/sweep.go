package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/explore"
	"repro/internal/metrics"
	"repro/internal/serve"
)

// handleSweep routes /v1/sweep. Async sweeps stay node-local (the job
// registry is not replicated). Synchronous sweeps go through the same
// two-tier cache as the keyed endpoints; an exhaustive sweep that ends
// up coordinated here is then distributed — split into configurations
// and work-stolen across the live node set — while the multi-fidelity
// fidelities compute locally (their pruning decisions are global, not
// per-configuration).
func (n *Node) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, ok := n.readRequest(w, r)
	if !ok {
		return
	}
	var req serve.SweepRequest
	if err := json.Unmarshal(body, &req); err != nil {
		n.reg().Request("sweep")
		respondError(w, http.StatusBadRequest, fmt.Errorf("serve: bad request body: %w", err))
		return
	}
	key, configs, err := serve.ExpandSweep(req)
	if err != nil {
		n.reg().Request("sweep")
		respondError(w, http.StatusBadRequest, err)
		return
	}
	if req.Async {
		n.delegate(w, r, body)
		return
	}
	if cached, ok := n.srv.CacheGet(key); ok {
		n.reg().Request("sweep")
		n.reg().Outcome("sweep", metrics.ServeHit, 0)
		n.writeBody(w, "sweep", key, "hit", n.opts.Self, cached)
		return
	}
	forwarded := r.Header.Get(forwardHeader) != ""
	if !forwarded {
		if owner := n.owner(key); owner != n.opts.Self {
			if n.tryPeerFetch(w, r.Context(), "sweep", "/v1/sweep", key, owner, body) {
				return
			}
			// Owner unreachable: coordinate here instead.
		}
	}
	exhaustive := req.Fidelity == "" || req.Fidelity == string(explore.FidelityExhaustive)
	if n.opts.DisableDistribution || !exhaustive || len(n.alivePeers()) == 0 {
		n.delegate(w, r, body)
		return
	}
	n.distributedSweep(w, r, key, req, configs)
}

// distributedSweep coordinates an exhaustive sweep's fan-out. The
// assembly runs under the sweep key through the server's own
// singleflight/queue machinery, so concurrent identical sweeps dedup
// onto one fan-out, backpressure still answers 429/503, and the
// assembled body lands in the local cache tier like any other result.
func (n *Node) distributedSweep(w http.ResponseWriter, r *http.Request, key string,
	req serve.SweepRequest, configs []serve.ConfigRequest) {
	start := time.Now()
	n.reg().Request("sweep")
	body, outcome, status, err := n.srv.Do(r.Context(), "sweep", key, req.DeadlineMs,
		func(ctx context.Context) ([]byte, error) {
			return n.sweepBody(ctx, key, req, configs)
		})
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		n.reg().Rejected(status)
	}
	if err != nil {
		respondError(w, status, err)
		return
	}
	n.reg().Outcome("sweep", outcome, uint64(time.Since(start).Microseconds()))
	n.writeBody(w, "sweep", key, outcome.String(), n.opts.Self, body)
}

// sweepBody computes an exhaustive sweep's bytes by work stealing: the
// configurations sit in one shared queue, and lanes — local workers
// computing inline plus per-peer fetch lanes — pull from it at
// whatever rate they can sustain, so a fast node simply takes more of
// the work. A configuration held by a lane that fails is requeued for
// the others (counted in /metricz), which is the no-lost-work
// guarantee: a peer dying mid-sweep costs time, not configurations.
// Rows are reassembled in cross-product order and closed with the
// standard trailer, making the body byte-identical to a single-node
// compute. Any deterministic per-configuration failure aborts the
// fan-out and falls back to a full local compute, whose error
// rendering (errors in the trailer) is again byte-identical.
func (n *Node) sweepBody(ctx context.Context, key string, req serve.SweepRequest,
	configs []serve.ConfigRequest) ([]byte, error) {
	rows := make([][]byte, len(configs))
	queue := make(chan int, len(configs))
	for i := range configs {
		queue <- i
	}
	var remaining atomic.Int64
	remaining.Store(int64(len(configs)))
	done := make(chan struct{})
	fallback := make(chan error, 1)
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	finish := func(idx int, body []byte) {
		rows[idx] = body
		if remaining.Add(-1) == 0 {
			close(done)
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < n.opts.SelfConcurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var idx int
				select {
				case <-wctx.Done():
					return
				case <-done:
					return
				case idx = <-queue:
				}
				body, err := n.srv.ConfigBodyInline(wctx, configs[idx])
				if err != nil {
					// First failure wins; the coordinator falls back to a
					// full local sweep so deterministic errors render
					// exactly as a single node would render them.
					select {
					case fallback <- err:
					default:
					}
					return
				}
				finish(idx, body)
			}
		}()
	}
	for _, peer := range n.alivePeers() {
		for i := 0; i < n.opts.PeerConcurrency; i++ {
			wg.Add(1)
			go func(peer string) {
				defer wg.Done()
				for {
					var idx int
					select {
					case <-wctx.Done():
						return
					case <-done:
						return
					case idx = <-queue:
					}
					body, retryable, err := n.fetchConfig(wctx, peer, configs[idx])
					if err != nil {
						// The held configuration goes back in the queue
						// either way — never lost. A busy peer keeps its
						// lane (it will drain); a dead one retires it.
						n.reg().Requeue(1)
						queue <- idx
						if retryable {
							select {
							case <-wctx.Done():
								return
							case <-time.After(10 * time.Millisecond):
							}
							continue
						}
						n.reg().PeerError()
						n.markDead(peer)
						return
					}
					finish(idx, body)
				}
			}(peer)
		}
	}

	select {
	case <-done:
		cancel()
		wg.Wait()
	case err := <-fallback:
		cancel()
		wg.Wait()
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		_ = err // deterministic failure: the local sweep re-derives and renders it
		return n.srv.ComputeSweepBody(ctx, req)
	case <-ctx.Done():
		cancel()
		wg.Wait()
		return nil, ctx.Err()
	}

	var buf bytes.Buffer
	for _, row := range rows {
		buf.Write(row)
	}
	trailer, err := serve.SweepTrailerLine(key, len(configs))
	if err != nil {
		return nil, err
	}
	buf.Write(trailer)
	return buf.Bytes(), nil
}

// fetchConfig asks a peer for one configuration row. retryable=true
// marks peer backpressure (429/503): the lane requeues and tries
// again. Everything else — network errors, truncated rows, 5xx —
// retires the lane and the configuration is requeued for others.
func (n *Node) fetchConfig(ctx context.Context, peer string, cfg serve.ConfigRequest) (body []byte, retryable bool, err error) {
	payload, err := json.Marshal(cfg)
	if err != nil {
		return nil, false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/config", bytes.NewReader(payload))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardHeader, "1")
	req.Header.Set(versionHeader, VersionTag())
	req.Header.Set(nodeHeader, n.opts.Self)
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	peerBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, err
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		if err := validateStream("config", peerBody); err != nil {
			return nil, false, err
		}
		n.reg().PeerFetch()
		return peerBody, false, nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		return nil, true, fmt.Errorf("cluster: peer %s backpressure: %d", peer, resp.StatusCode)
	default:
		return nil, false, fmt.Errorf("cluster: peer %s config status %d", peer, resp.StatusCode)
	}
}
