package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/mem"
	"repro/internal/rtlbus"
	"repro/internal/sim"
	"repro/internal/tlm1"
)

var lay = core.Layout{Fast: 0, Slow: 0x10000}

func busMap() *ecbus.Map {
	return ecbus.MustMap(
		mem.NewRAM("fast", lay.Fast, 0x1000, 0, 0),
		mem.NewRAM("slow", lay.Slow, 0x1000, 1, 2),
	)
}

// record runs the verification corpus on layer 0 through a Recorder.
func record(t *testing.T) []Record {
	t.Helper()
	k := sim.New(0)
	b := rtlbus.New(k, busMap())
	rec := NewRecorder(b)
	m, _ := core.RunScript(k, rec, core.VerificationCorpus(lay), 1_000_000)
	if !m.Done() {
		t.Fatal("recording run did not finish")
	}
	return rec.Records()
}

func TestRecorderCapturesAllTransactions(t *testing.T) {
	recs := record(t)
	want := len(core.VerificationCorpus(lay))
	if len(recs) != want {
		t.Fatalf("recorded %d transactions, want %d", len(recs), want)
	}
	// Issue cycles must be non-decreasing (acceptance order).
	for i := 1; i < len(recs); i++ {
		if recs[i].Issue < recs[i-1].Issue {
			t.Fatalf("issue cycles not monotone at %d", i)
		}
	}
	// Writes carry data, reads do not.
	for _, r := range recs {
		if r.Kind == ecbus.Write && len(r.Data) == 0 {
			t.Fatal("write record without data")
		}
		if r.Kind != ecbus.Write && len(r.Data) != 0 {
			t.Fatal("read record with data")
		}
	}
}

// TestReplayMatchesDirectRun is the paper's verification step: a trace
// captured at the lower layer replays into the layer-1 model and every
// transaction completes on the same cycle as a direct layer-1 run.
func TestReplayMatchesDirectRun(t *testing.T) {
	recs := record(t)

	k1 := sim.New(0)
	b1 := tlm1.New(k1, busMap())
	direct, dc := core.RunScript(k1, b1, core.VerificationCorpus(lay), 1_000_000)

	k2 := sim.New(0)
	b2 := tlm1.New(k2, busMap())
	replay, rc := core.RunScript(k2, b2, Items(recs), 1_000_000)

	if !direct.Done() || !replay.Done() {
		t.Fatal("runs did not finish")
	}
	if dc != rc {
		t.Fatalf("direct run %d cycles, replay %d cycles", dc, rc)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	recs := record(t)
	var buf bytes.Buffer
	if err := Save(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip length %d != %d", len(back), len(recs))
	}
	for i := range recs {
		a, b := recs[i], back[i]
		if a.Kind != b.Kind || a.Addr != b.Addr || a.Width != b.Width ||
			a.Burst != b.Burst || a.Issue != b.Issue || len(a.Data) != len(b.Data) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, a, b)
		}
		for j := range a.Data {
			if a.Data[j] != b.Data[j] {
				t.Fatalf("record %d data %d mismatch", i, j)
			}
		}
	}
}

func TestLoadRejectsCorruptLines(t *testing.T) {
	bad := []string{
		"1 9 100 4 0",    // bad kind
		"x 0 100 4 0",    // bad issue
		"1 0 zz 4 0",     // bad addr
		"1 0 100 4",      // short line
		"1 2 100 4 0 zz", // bad data
	}
	for _, s := range bad {
		if _, err := Load(strings.NewReader(s)); err == nil {
			t.Errorf("loaded corrupt line %q", s)
		}
	}
	// Blank lines are fine.
	recs, err := Load(strings.NewReader("\n\n1 0 100 4 0\n"))
	if err != nil || len(recs) != 1 {
		t.Fatalf("blank-line handling: %v, %d recs", err, len(recs))
	}
}

func TestItemsSkipsCorruptRecords(t *testing.T) {
	recs := []Record{
		{Kind: ecbus.Read, Addr: 0x101, Width: ecbus.W32}, // misaligned
		{Kind: ecbus.Read, Addr: 0x100, Width: ecbus.W32},
	}
	items := Items(recs)
	if len(items) != 1 {
		t.Fatalf("items = %d, want 1 (corrupt skipped)", len(items))
	}
}

func TestVCDOutput(t *testing.T) {
	k := sim.New(0)
	b := rtlbus.New(k, busMap())
	var buf bytes.Buffer
	v := NewVCD(&buf)
	k.At(sim.Post, "vcd", func(uint64) { v.Observe(b.Wires()) })
	m, _ := core.RunScript(k, b, core.VerificationCorpus(lay), 1_000_000)
	if !m.Done() {
		t.Fatal("run did not finish")
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"$timescale", "EB_AValid", "EB_A", "$enddefinitions", "#0"} {
		if !strings.Contains(s, want) {
			t.Fatalf("VCD missing %q", want)
		}
	}
	if strings.Count(s, "\n") < 50 {
		t.Fatal("VCD implausibly short")
	}
}

func TestProfileStats(t *testing.T) {
	var p Profile
	for _, v := range []float64{1e-12, 5e-12, 2e-12} {
		p.Add(v)
	}
	if p.Total() != 8e-12 {
		t.Fatalf("total = %g", p.Total())
	}
	if p.Peak() != 5e-12 {
		t.Fatalf("peak = %g", p.Peak())
	}
	var buf bytes.Buffer
	if err := p.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "cycle,energy_pJ\n0,1.000000\n") {
		t.Fatalf("CSV = %q", buf.String())
	}
}
