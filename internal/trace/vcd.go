package trace

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/ecbus"
)

// VCDWriter dumps the EC interface wire bundle cycle by cycle as a Value
// Change Dump, viewable in standard waveform tools. Register its Observe
// in the kernel's Post phase over the layer-0 bus wires.
type VCDWriter struct {
	w     *bufio.Writer
	prev  ecbus.Bundle
	first bool
	time  uint64
	err   error
}

// vcdID returns the short identifier code of signal id.
func vcdID(id ecbus.SignalID) string { return string(rune('!' + int(id))) }

// NewVCD writes the VCD header (10 ns timescale per cycle) and returns
// the writer.
func NewVCD(w io.Writer) *VCDWriter {
	v := &VCDWriter{w: bufio.NewWriter(w), first: true}
	fmt.Fprintln(v.w, "$date repro ecbus trace $end")
	fmt.Fprintln(v.w, "$version repro hierarchical bus models $end")
	fmt.Fprintln(v.w, "$timescale 10ns $end")
	fmt.Fprintln(v.w, "$scope module ecbus $end")
	for id := ecbus.SignalID(0); id < ecbus.NumSignals; id++ {
		fmt.Fprintf(v.w, "$var wire %d %s %s $end\n", id.Bits(), vcdID(id), id.String())
	}
	fmt.Fprintln(v.w, "$upscope $end")
	fmt.Fprintln(v.w, "$enddefinitions $end")
	return v
}

// Observe records one cycle's wire values, emitting only changes.
func (v *VCDWriter) Observe(b *ecbus.Bundle) {
	if v.err != nil {
		return
	}
	wroteTime := false
	for id := ecbus.SignalID(0); id < ecbus.NumSignals; id++ {
		if !v.first && v.prev.Get(id) == b.Get(id) {
			continue
		}
		if !wroteTime {
			_, v.err = fmt.Fprintf(v.w, "#%d\n", v.time)
			wroteTime = true
		}
		if id.Bits() == 1 {
			_, v.err = fmt.Fprintf(v.w, "%d%s\n", b.Get(id)&1, vcdID(id))
		} else {
			_, v.err = fmt.Fprintf(v.w, "b%b %s\n", b.Get(id), vcdID(id))
		}
	}
	v.prev = *b
	v.first = false
	v.time++
}

// Close flushes the dump and returns the first write error, if any.
func (v *VCDWriter) Close() error {
	if err := v.w.Flush(); err != nil {
		return err
	}
	return v.err
}

// Profile is a per-cycle power profile (joules per cycle), the raw
// material of the paper's power-analysis motivation: "Estimation of
// power consumption over time is important to reduce the probability of
// a successful power analysis attack."
type Profile struct {
	Samples []float64
}

// Add appends one cycle's energy.
func (p *Profile) Add(e float64) { p.Samples = append(p.Samples, e) }

// Total returns the integrated energy.
func (p *Profile) Total() float64 {
	var s float64
	for _, v := range p.Samples {
		s += v
	}
	return s
}

// Peak returns the largest per-cycle sample, the figure contact-less
// cards must keep under the RF-field supply budget.
func (p *Profile) Peak() float64 {
	var m float64
	for _, v := range p.Samples {
		if v > m {
			m = v
		}
	}
	return m
}

// WriteCSV emits "cycle,energy_pJ" rows.
func (p *Profile) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "cycle,energy_pJ"); err != nil {
		return err
	}
	for i, v := range p.Samples {
		if _, err := fmt.Fprintf(bw, "%d,%.6f\n", i, v*1e12); err != nil {
			return err
		}
	}
	return bw.Flush()
}
