// Package trace implements the paper's trace flow (§4.1): "We traced the
// bus transactions and used them as input test sequences for the
// transaction level models." A Recorder captures the transaction stream
// a master drives into any bus layer; the recording replays into any
// other layer as a stimulus script, serializes to a line-oriented text
// format, and exports as VCD (wire level) or CSV (power profile) for
// waveform and power-analysis tooling.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/ecbus"
)

// Record is one traced transaction.
type Record struct {
	Kind  ecbus.Kind
	Addr  uint64
	Width ecbus.Width
	Burst bool
	Data  []uint32 // write payload (empty for reads)
	Issue uint64   // cycle the request was accepted
}

// Recorder wraps a bus initiator and captures every accepted
// transaction. It is transparent: masters drive it exactly like the
// underlying bus.
type Recorder struct {
	inner core.Initiator
	recs  []Record
	seen  map[*ecbus.Transaction]bool
}

// NewRecorder wraps bus.
func NewRecorder(bus core.Initiator) *Recorder {
	return &Recorder{inner: bus, seen: map[*ecbus.Transaction]bool{}}
}

// Access implements core.Initiator, recording first acceptances.
func (r *Recorder) Access(tr *ecbus.Transaction) ecbus.BusState {
	st := r.inner.Access(tr)
	if st == ecbus.StateRequest && !r.seen[tr] {
		r.seen[tr] = true
		rec := Record{
			Kind: tr.Kind, Addr: tr.Addr, Width: tr.Width,
			Burst: tr.Burst, Issue: tr.IssueCycle,
		}
		if tr.Kind == ecbus.Write {
			rec.Data = append([]uint32(nil), tr.Data...)
		}
		r.recs = append(r.recs, rec)
	}
	return st
}

// Records returns the captured transactions in acceptance order.
func (r *Recorder) Records() []Record { return r.recs }

// Items rebuilds the trace as a stimulus script preserving the recorded
// issue timing, ready to replay into another bus layer.
func Items(recs []Record) []core.Item {
	items := make([]core.Item, 0, len(recs))
	for i, rec := range recs {
		var tr *ecbus.Transaction
		var err error
		if rec.Burst {
			data := rec.Data
			if rec.Kind != ecbus.Write {
				data = nil
			}
			tr, err = ecbus.NewBurst(uint64(i+1), rec.Kind, rec.Addr, append([]uint32(nil), data...))
		} else {
			var d uint32
			if len(rec.Data) > 0 {
				d = rec.Data[0]
			}
			tr, err = ecbus.NewSingle(uint64(i+1), rec.Kind, rec.Addr, rec.Width, d)
		}
		if err != nil {
			// Traces come from live runs; a malformed record indicates
			// corruption — skip it rather than poison the replay.
			continue
		}
		items = append(items, core.Item{Tr: tr, NotBefore: rec.Issue})
	}
	return items
}

// Save writes the trace in the line format:
//
//	<issue> <kind> <addr-hex> <width> <burst> [data-hex...]
func Save(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		burst := 0
		if r.Burst {
			burst = 1
		}
		if _, err := fmt.Fprintf(bw, "%d %d %x %d %d", r.Issue, int(r.Kind), r.Addr, int(r.Width), burst); err != nil {
			return err
		}
		for _, d := range r.Data {
			if _, err := fmt.Fprintf(bw, " %x", d); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load parses a trace written by Save.
func Load(rd io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(rd)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) < 5 {
			return nil, fmt.Errorf("trace: line %d: want >=5 fields, got %d", line, len(fields))
		}
		var r Record
		var err error
		if r.Issue, err = strconv.ParseUint(fields[0], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d: issue: %v", line, err)
		}
		k, err := strconv.Atoi(fields[1])
		if err != nil || k < 0 || k > 2 {
			return nil, fmt.Errorf("trace: line %d: bad kind %q", line, fields[1])
		}
		r.Kind = ecbus.Kind(k)
		if r.Addr, err = strconv.ParseUint(fields[2], 16, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d: addr: %v", line, err)
		}
		w, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: width: %v", line, err)
		}
		r.Width = ecbus.Width(w)
		b, err := strconv.Atoi(fields[4])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: burst: %v", line, err)
		}
		r.Burst = b != 0
		for _, f := range fields[5:] {
			d, err := strconv.ParseUint(f, 16, 32)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: data: %v", line, err)
			}
			r.Data = append(r.Data, uint32(d))
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}
