package fault

import (
	"reflect"
	"strings"
	"testing"
)

// Fuzz coverage for the plan text codec and the WithoutReadErrors
// projection. The codec properties: Parse never panics, every plan it
// accepts validates, and Spec is a canonical fixed point — re-parsing a
// rendered spec reproduces the plan and re-rendering reproduces the
// spec. The projection properties: read-beat injection is gone, every
// other knob survives untouched, the result still validates, and the
// projection is idempotent and commutes with the codec.

func FuzzPlanParse(f *testing.F) {
	for _, name := range Names {
		f.Add(name)
		if p, ok := Named(name); ok {
			f.Add(p.Spec())
		}
	}
	f.Add("seed=0xC0FFEE,rerr=25,werr=25,wait=200,maxwait=8,corrupt=0xdeadbeef,stretch=1")
	f.Add("script=read@0x40+2x3")
	f.Add("script=write@0x40+0x0,script=read@0x44+1x1")
	f.Add("seed=0b1010,wait=1000,maxwait=1")
	f.Add("rerr=1001")
	f.Add("seed=,=,x")
	f.Add("script=read@zz+1x1")
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(spec)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("Parse(%q) accepted an invalid plan: %v", spec, verr)
		}
		canon := p.Spec()
		p2, err := Parse(canon)
		if err != nil {
			t.Fatalf("re-parse of canonical spec %q failed: %v", canon, err)
		}
		if !plansEqual(p, p2) {
			t.Fatalf("codec round trip changed the plan:\n in: %+v\nout: %+v (spec %q)", p, p2, canon)
		}
		if again := p2.Spec(); again != canon {
			t.Fatalf("Spec not a fixed point: %q then %q", canon, again)
		}
		if strings.Contains(canon, " ") {
			t.Fatalf("canonical spec contains whitespace: %q", canon)
		}
	})
}

// plansEqual compares plans treating a nil and an empty scripted list
// as the same (the codec never materializes an empty non-nil slice, but
// the projection may).
func plansEqual(a, b Plan) bool {
	as, bs := a.Scripted, b.Scripted
	a.Scripted, b.Scripted = nil, nil
	if !reflect.DeepEqual(a, b) || len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func FuzzWithoutReadErrors(f *testing.F) {
	f.Add(uint64(0xC0FFEE), uint16(25), uint16(25), uint16(200), uint16(8), uint16(1), uint32(0xdeadbeef), []byte{0, 0x40, 2, 3})
	f.Add(uint64(1), uint16(0), uint16(0), uint16(0), uint16(0), uint16(0), uint32(0), []byte{1, 0x10, 0, 0, 0, 0x14, 1, 1})
	f.Add(uint64(0), uint16(1000), uint16(1000), uint16(1000), uint16(255), uint16(9), uint32(1), []byte{})
	f.Fuzz(func(t *testing.T, seed uint64, rerr, werr, wait, maxwait, stretch uint16, corrupt uint32, script []byte) {
		p := Plan{
			Seed:             seed,
			ReadErrPermille:  int(rerr % 1001),
			WriteErrPermille: int(werr % 1001),
			WaitPermille:     int(wait % 1001),
			MaxExtraWait:     int(maxwait),
			CorruptMask:      corrupt,
			BusyStretch:      int(stretch),
		}
		if p.WaitPermille > 0 && p.MaxExtraWait == 0 {
			p.MaxExtraWait = 1
		}
		// Each 4-byte chunk of script is one window: op, word index,
		// after, count.
		for len(script) >= 4 {
			s := ScriptedFault{
				Op:    Op(script[0] & 1),
				Addr:  uint64(script[1]) << 2,
				After: uint32(script[2]),
				Count: uint32(script[3]),
			}
			p.Scripted = append(p.Scripted, s)
			script = script[4:]
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("constructed plan does not validate: %v (%+v)", err, p)
		}

		q := p.WithoutReadErrors()
		if q.ReadErrPermille != 0 || q.CorruptMask != 0 {
			t.Fatalf("projection kept read injection: %+v", q)
		}
		if q.Seed != p.Seed || q.WriteErrPermille != p.WriteErrPermille ||
			q.WaitPermille != p.WaitPermille || q.MaxExtraWait != p.MaxExtraWait ||
			q.BusyStretch != p.BusyStretch {
			t.Fatalf("projection changed a non-read knob:\n in: %+v\nout: %+v", p, q)
		}
		var wantScripted []ScriptedFault
		for _, s := range p.Scripted {
			if s.Op != OpRead {
				wantScripted = append(wantScripted, s)
			}
		}
		if len(q.Scripted) != len(wantScripted) {
			t.Fatalf("projection kept %d scripted windows, want %d", len(q.Scripted), len(wantScripted))
		}
		for i := range wantScripted {
			if q.Scripted[i] != wantScripted[i] {
				t.Fatalf("scripted window %d reordered or altered: %+v != %+v", i, q.Scripted[i], wantScripted[i])
			}
		}
		if err := q.Validate(); err != nil {
			t.Fatalf("projected plan does not validate: %v", err)
		}
		if qq := q.WithoutReadErrors(); !plansEqual(q, qq) {
			t.Fatalf("projection not idempotent:\nonce:  %+v\ntwice: %+v", q, qq)
		}
		// The projection commutes with the codec: re-parsing its spec
		// reproduces it.
		rp, err := Parse(q.Spec())
		if err != nil {
			t.Fatalf("projected spec %q does not parse: %v", q.Spec(), err)
		}
		if !plansEqual(rp, q) {
			t.Fatalf("projected plan lost in codec: %+v != %+v", rp, q)
		}
		if !reflect.DeepEqual(p.WithoutReadErrors(), q) {
			t.Fatalf("projection not deterministic")
		}
	})
}
