package fault

import (
	"testing"

	"repro/internal/ecbus"
	"repro/internal/mem"
)

func newTestRAM(t *testing.T) *mem.RAM {
	t.Helper()
	r := mem.NewRAM("ram", 0, 0x100, 0, 0)
	for a := uint64(0); a < 0x100; a += 4 {
		if !r.WriteWord(a, uint32(a)*0x0101, ecbus.W32) {
			t.Fatalf("seed write at %#x failed", a)
		}
	}
	return r
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"zero", Plan{}, true},
		{"permille-high", Plan{Seed: 1, ReadErrPermille: 1001}, false},
		{"permille-negative", Plan{Seed: 1, WriteErrPermille: -1}, false},
		{"wait-no-max", Plan{Seed: 1, WaitPermille: 100}, false},
		{"wait-ok", Plan{Seed: 1, WaitPermille: 100, MaxExtraWait: 4}, true},
		{"negative-stretch", Plan{BusyStretch: -1}, false},
		{"scripted-misaligned", Plan{Scripted: []ScriptedFault{{Op: OpRead, Addr: 2}}}, false},
		{"scripted-bad-op", Plan{Scripted: []ScriptedFault{{Op: Op(9), Addr: 4}}}, false},
		{"scripted-ok", Plan{Scripted: []ScriptedFault{{Op: OpWrite, Addr: 8, After: 1, Count: 2}}}, true},
	}
	for _, c := range cases {
		if err := c.plan.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestPlanEmpty(t *testing.T) {
	if !(Plan{}).Empty() {
		t.Error("zero plan should be empty")
	}
	// Permilles without a seed stay inert, but the plan deliberately
	// reports non-empty only when something can actually fire.
	for _, p := range []Plan{
		{Seed: 1},
		{BusyStretch: 1},
		{Scripted: []ScriptedFault{{Op: OpRead, Addr: 0}}},
	} {
		if p.Empty() {
			t.Errorf("plan %+v should not be empty", p)
		}
	}
}

func TestNamedPlans(t *testing.T) {
	for _, name := range Names {
		p, ok := Named(name)
		if !ok {
			t.Fatalf("Named(%q) not found", name)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Named(%q) invalid: %v", name, err)
		}
		if name == "none" && !p.Empty() {
			t.Error(`plan "none" should be empty`)
		}
		if name != "none" && p.Empty() {
			t.Errorf("plan %q should not be empty", name)
		}
	}
	if _, ok := Named(""); !ok {
		t.Error(`Named("") should resolve to the empty plan`)
	}
	if _, ok := Named("bogus"); ok {
		t.Error(`Named("bogus") should not resolve`)
	}
}

func TestScriptedReadWindow(t *testing.T) {
	in := Wrap(newTestRAM(t), Plan{Scripted: []ScriptedFault{
		{Op: OpRead, Addr: 0x10, After: 2, Count: 2},
	}})
	want := []bool{true, true, false, false, true, true}
	for i, ok := range want {
		_, got := in.ReadWord(0x10, ecbus.W32)
		if got != ok {
			t.Errorf("read %d: ok=%v, want %v", i, got, ok)
		}
	}
	// Other words are untouched.
	if _, ok := in.ReadWord(0x14, ecbus.W32); !ok {
		t.Error("unscripted word errored")
	}
	if s := in.Stats(); s.ReadErrors != 2 {
		t.Errorf("ReadErrors = %d, want 2", s.ReadErrors)
	}
}

func TestScriptedUnboundedWindow(t *testing.T) {
	in := Wrap(newTestRAM(t), Plan{Scripted: []ScriptedFault{
		{Op: OpWrite, Addr: 0x20, After: 1, Count: 0},
	}})
	if !in.WriteWord(0x20, 1, ecbus.W32) {
		t.Error("write before window should succeed")
	}
	for i := 0; i < 5; i++ {
		if in.WriteWord(0x20, 2, ecbus.W32) {
			t.Errorf("write %d inside unbounded window should fail", i+1)
		}
	}
}

func TestWriteSuppression(t *testing.T) {
	ram := newTestRAM(t)
	in := Wrap(ram, Plan{Scripted: []ScriptedFault{
		{Op: OpWrite, Addr: 0x30, After: 0, Count: 1},
	}})
	before, _ := ram.ReadWord(0x30, ecbus.W32)
	if in.WriteWord(0x30, 0xFFFF_FFFF, ecbus.W32) {
		t.Fatal("faulted write reported success")
	}
	after, _ := ram.ReadWord(0x30, ecbus.W32)
	if after != before {
		t.Errorf("suppressed write committed: %#x -> %#x", before, after)
	}
	if !in.WriteWord(0x30, 0x1234, ecbus.W32) {
		t.Fatal("write after window failed")
	}
	if got, _ := ram.ReadWord(0x30, ecbus.W32); got != 0x1234 {
		t.Errorf("post-window write lost: got %#x", got)
	}
}

func TestCorruption(t *testing.T) {
	ram := newTestRAM(t)
	in := Wrap(ram, Plan{
		CorruptMask: 0xDEAD_BEEF,
		Scripted:    []ScriptedFault{{Op: OpRead, Addr: 0x40, After: 0, Count: 1}},
	})
	clean, _ := ram.ReadWord(0x40, ecbus.W32)
	got, ok := in.ReadWord(0x40, ecbus.W32)
	if ok {
		t.Fatal("faulted read reported success")
	}
	if got != clean^0xDEAD_BEEF {
		t.Errorf("corrupted data = %#x, want %#x", got, clean^0xDEAD_BEEF)
	}
	// The array itself is untouched; the next read returns clean data.
	if got, ok := in.ReadWord(0x40, ecbus.W32); !ok || got != clean {
		t.Errorf("post-error read = %#x ok=%v, want clean %#x", got, ok, clean)
	}
	if s := in.Stats(); s.Corruptions != 1 {
		t.Errorf("Corruptions = %d, want 1", s.Corruptions)
	}
}

// TestSeededDeterminism is the contract the cross-layer equivalence test
// relies on: two independent injector instances with the same plan make
// identical decisions for the same access sequence, regardless of when
// (in simulation time) the accesses happen.
func TestSeededDeterminism(t *testing.T) {
	plan := Plan{Seed: 0xBEEF, ReadErrPermille: 300, WriteErrPermille: 300}
	run := func() []bool {
		in := Wrap(newTestRAM(t), plan)
		var out []bool
		for a := uint64(0); a < 0x100; a += 4 {
			for n := 0; n < 3; n++ {
				_, ok := in.ReadWord(a, ecbus.W32)
				out = append(out, ok)
				out = append(out, in.WriteWord(a, uint32(a), ecbus.W32))
			}
		}
		return out
	}
	a, b := run(), run()
	var errs int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged between instances", i)
		}
		if !a[i] {
			errs++
		}
	}
	if errs == 0 {
		t.Error("300 permille over 384 beats injected nothing; seeding broken")
	}
	if errs == len(a) {
		t.Error("every beat errored; permille scaling broken")
	}
}

// waiterStub is a slave with a fixed dynamic wait, standing in for an
// EEPROM mid-programming.
type waiterStub struct {
	extra int
}

func (w *waiterStub) Config() ecbus.SlaveConfig {
	return ecbus.SlaveConfig{Name: "stub", Base: 0, Size: 0x100, Readable: true, Writable: true}
}
func (w *waiterStub) ReadWord(addr uint64, _ ecbus.Width) (uint32, bool)  { return 0, true }
func (w *waiterStub) WriteWord(addr uint64, _ uint32, _ ecbus.Width) bool { return true }
func (w *waiterStub) ExtraWait(ecbus.Kind, uint64) int                    { return w.extra }

func TestBusyStretch(t *testing.T) {
	in := Wrap(&waiterStub{extra: 5}, Plan{BusyStretch: 2})
	if got := in.ExtraWait(ecbus.Write, 0x10); got != 15 {
		t.Errorf("ExtraWait = %d, want 15 (5 stretched by 1+2)", got)
	}
	if s := in.Stats(); s.Stretched != 10 {
		t.Errorf("Stretched = %d, want 10", s.Stretched)
	}
	// Idle device: nothing to stretch.
	idle := Wrap(&waiterStub{extra: 0}, Plan{BusyStretch: 2})
	if got := idle.ExtraWait(ecbus.Write, 0x10); got != 0 {
		t.Errorf("idle ExtraWait = %d, want 0", got)
	}
}

func TestWaitStorm(t *testing.T) {
	plan := Plan{Seed: 7, WaitPermille: 1000, MaxExtraWait: 4}
	in := Wrap(&waiterStub{}, plan)
	first := in.ExtraWait(ecbus.Read, 0x10)
	if first < 1 || first > 4 {
		t.Fatalf("storm length %d outside [1,4]", first)
	}
	// Layer invariance: the same (kind, address) samples identically no
	// matter how many times or when it is asked.
	for i := 0; i < 5; i++ {
		if got := in.ExtraWait(ecbus.Read, 0x10); got != first {
			t.Fatalf("resample %d: %d != %d", i, got, first)
		}
	}
	// Different kinds and addresses draw from independent streams; over
	// many keys at 1000 permille every key storms.
	for a := uint64(0); a < 0x400; a += 4 {
		if got := in.ExtraWait(ecbus.Write, a); got < 1 || got > 4 {
			t.Fatalf("addr %#x: storm %d outside [1,4]", a, got)
		}
	}
}

func TestZeroSeedDisablesRandom(t *testing.T) {
	in := Wrap(newTestRAM(t), Plan{ReadErrPermille: 1000, WriteErrPermille: 1000})
	for a := uint64(0); a < 0x100; a += 4 {
		if _, ok := in.ReadWord(a, ecbus.W32); !ok {
			t.Fatalf("zero-seed plan injected a read error at %#x", a)
		}
	}
	w := Wrap(&waiterStub{}, Plan{WaitPermille: 1000, MaxExtraWait: 8})
	if got := w.ExtraWait(ecbus.Read, 0); got != 0 {
		t.Errorf("zero-seed plan injected %d wait cycles", got)
	}
}

func TestWrapPanicsOnInvalidPlan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Wrap accepted an invalid plan")
		}
	}()
	Wrap(newTestRAM(t), Plan{Seed: 1, ReadErrPermille: 2000})
}

func TestInnerErrorPassesThrough(t *testing.T) {
	// Reads outside the RAM's backing array fail in the inner slave; the
	// injector must forward that verbatim and not count it as injected.
	ram := mem.NewRAM("ram", 0, 0x10, 0, 0)
	in := Wrap(ram, Plan{Seed: 1, CorruptMask: 0xFF})
	if ok := in.WriteWord(0x8, 0xAB, ecbus.W16); !ok {
		t.Fatal("16-bit write failed")
	}
	if s := in.Stats(); s.ReadErrors != 0 && s.WriteErrors != 0 {
		t.Errorf("pass-through counted as injection: %+v", s)
	}
}

func TestWithoutReadErrors(t *testing.T) {
	p := Plan{
		Seed:             9,
		ReadErrPermille:  500,
		WriteErrPermille: 400,
		WaitPermille:     100,
		MaxExtraWait:     4,
		CorruptMask:      0xFF,
		BusyStretch:      1,
		Scripted: []ScriptedFault{
			{Op: OpRead, Addr: 0x10},
			{Op: OpWrite, Addr: 0x20},
		},
	}
	q := p.WithoutReadErrors()
	if q.ReadErrPermille != 0 || q.CorruptMask != 0 {
		t.Fatalf("read-error knobs kept: %+v", q)
	}
	if len(q.Scripted) != 1 || q.Scripted[0].Op != OpWrite {
		t.Fatalf("scripted read window kept: %+v", q.Scripted)
	}
	if q.WriteErrPermille != 400 || q.WaitPermille != 100 || q.BusyStretch != 1 || q.Seed != 9 {
		t.Fatalf("unrelated knobs changed: %+v", q)
	}
	if q.Empty() {
		t.Fatal("projection of a non-empty seeded plan reported empty")
	}
	// A destructive-read slave behind the projection never sees an
	// injected read error.
	in := Wrap(newTestRAM(t), q)
	for a := uint64(0); a < 0x100; a += 4 {
		if _, ok := in.ReadWord(a, ecbus.W32); !ok {
			t.Fatalf("projected plan injected a read error at %#x", a)
		}
	}
}
