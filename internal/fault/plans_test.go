package fault

import (
	"strings"
	"testing"
)

func TestParseNamesValid(t *testing.T) {
	got, err := ParseNames(" none, flaky ,storm,grind ")
	if err != nil {
		t.Fatalf("ParseNames: %v", err)
	}
	want := []string{"none", "flaky", "storm", "grind"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestParseNamesEmptyElements(t *testing.T) {
	got, err := ParseNames(",flaky,,")
	if err != nil {
		t.Fatalf("ParseNames: %v", err)
	}
	if len(got) != 1 || got[0] != "flaky" {
		t.Fatalf("got %v, want [flaky]", got)
	}
}

// An unknown name must error — never fall back to the clean plan — and
// the message must name every valid plan so the fix is obvious.
func TestParseNamesUnknown(t *testing.T) {
	_, err := ParseNames("none,bogus")
	if err == nil {
		t.Fatal("unknown plan name accepted")
	}
	if !strings.Contains(err.Error(), `"bogus"`) {
		t.Fatalf("error does not name the offender: %v", err)
	}
	for _, n := range Names {
		if !strings.Contains(err.Error(), n) {
			t.Fatalf("error does not list valid plan %q: %v", n, err)
		}
	}
	for _, n := range TearNames {
		if !strings.Contains(err.Error(), n) {
			t.Fatalf("error does not list tear plan %q: %v", n, err)
		}
	}
}

// A tear plan passed on the fault axis is a likely user mistake: the
// rejection must say which axis it belongs to and still spell out both
// vocabularies.
func TestParseNamesTearPlanRedirects(t *testing.T) {
	_, err := ParseNames("tear-mid")
	if err == nil {
		t.Fatal("tear plan accepted as a fault plan")
	}
	if !strings.Contains(err.Error(), "-tear axis") {
		t.Fatalf("error does not redirect to the tear axis: %v", err)
	}
	for _, n := range append(append([]string{}, Names...), TearNames...) {
		if !strings.Contains(err.Error(), n) {
			t.Fatalf("error does not list %q: %v", n, err)
		}
	}
}
