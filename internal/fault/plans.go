package fault

import (
	"fmt"
	"strings"
)

// Canonical named plans: the vocabulary of the exploration sweep's
// fault axis, the ecbench fault table and the docs. Fixed seeds make
// every run of a named plan reproducible bit for bit.
//
//	none   no injection (the empty plan)
//	flaky  transient data-beat errors with corruption, both directions
//	storm  wait-state storms plus stretched EEPROM/Flash busy windows
//	grind  errors and storms combined, the worst-case soak
var Names = []string{"none", "flaky", "storm", "grind"}

// TearNames is the card-tear plan vocabulary of the -tear axis
// (internal/tear's Names, duplicated here so the fault package — which
// tear's clients sit below — can recognize them without an import
// cycle; a consistency test in internal/tear keeps the two in sync).
// Tear plans are power-loss events, not bus faults: they travel on
// their own axis, and ParseNames rejects them with a pointer there.
var TearNames = []string{"tear-early", "tear-mid", "tear-late"}

// Named returns the canonical plan with the given name.
func Named(name string) (Plan, bool) {
	switch name {
	case "none", "":
		return Plan{}, true
	case "flaky":
		return Plan{
			Seed:             0xC0FFEE,
			ReadErrPermille:  25,
			WriteErrPermille: 25,
			CorruptMask:      0xDEAD_BEEF,
		}, true
	case "storm":
		return Plan{
			Seed:         0x57_0121,
			WaitPermille: 200,
			MaxExtraWait: 8,
			BusyStretch:  1,
		}, true
	case "grind":
		return Plan{
			Seed:             0x6121_4D,
			ReadErrPermille:  40,
			WriteErrPermille: 40,
			WaitPermille:     150,
			MaxExtraWait:     6,
			CorruptMask:      0xA5A5_A5A5,
			BusyStretch:      1,
		}, true
	default:
		return Plan{}, false
	}
}

// ParseNames validates a comma-separated list of named plans — the
// form the CLI fault-axis flags take. Whitespace around elements is
// trimmed and empty elements are dropped. An unknown name is an error
// that spells out the valid vocabulary, so a typo fails loudly instead
// of silently degrading to a clean run.
func ParseNames(csv string) ([]string, error) {
	var names []string
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := Named(name); !ok {
			for _, tn := range TearNames {
				if name == tn {
					return nil, fmt.Errorf("fault: %q is a card-tear plan, not a fault plan — pass it via the -tear axis (fault plans: %s; tear plans: %s)",
						name, strings.Join(Names, ", "), strings.Join(TearNames, ", "))
				}
			}
			return nil, fmt.Errorf("fault: unknown plan %q (valid plans: %s; tear plans travel on the -tear axis: %s)",
				name, strings.Join(Names, ", "), strings.Join(TearNames, ", "))
		}
		names = append(names, name)
	}
	return names, nil
}
