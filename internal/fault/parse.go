package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Plan text codec. A spec is either a canonical plan name (Names) or a
// comma-separated list of key=value pairs:
//
//	seed=0xC0FFEE,rerr=25,werr=25,wait=200,maxwait=8,corrupt=0xdeadbeef,stretch=1
//
// Keys map one-to-one onto Plan fields: seed, rerr (ReadErrPermille),
// werr (WriteErrPermille), wait (WaitPermille), maxwait (MaxExtraWait),
// corrupt (CorruptMask), stretch (BusyStretch). Numbers accept any base
// strconv understands (0x.., 0o.., decimal). Scripted fault windows use
// the repeatable key
//
//	script=<op>@<addr>+<after>x<count>
//
// e.g. script=read@0x40+2x3 — the 3 accesses after the first 2 reads of
// word 0x40 fail (count 0 = every access from <after> on). Parse and
// Plan.Spec round-trip: Parse(p.Spec()) reproduces p for any valid p.

// Spec renders the plan in the canonical key=value form understood by
// Parse. The zero plan renders as "none"; fields at their zero value
// are omitted; keys appear in a fixed order so equal plans render
// identically.
func (p Plan) Spec() string {
	var parts []string
	add := func(k string, v uint64, hex bool) {
		if v == 0 {
			return
		}
		if hex {
			parts = append(parts, k+"=0x"+strconv.FormatUint(v, 16))
		} else {
			parts = append(parts, k+"="+strconv.FormatUint(v, 10))
		}
	}
	add("seed", p.Seed, true)
	add("rerr", uint64(p.ReadErrPermille), false)
	add("werr", uint64(p.WriteErrPermille), false)
	add("wait", uint64(p.WaitPermille), false)
	add("maxwait", uint64(p.MaxExtraWait), false)
	add("corrupt", uint64(p.CorruptMask), true)
	add("stretch", uint64(p.BusyStretch), false)
	for _, s := range p.Scripted {
		parts = append(parts, fmt.Sprintf("script=%s@0x%x+%dx%d", s.Op, s.Addr, s.After, s.Count))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// Parse decodes a plan spec: a canonical name from Names, or the
// key=value form documented above. The decoded plan is validated, so a
// nil error implies the plan is safe to Wrap.
func Parse(spec string) (Plan, error) {
	if p, ok := Named(spec); ok {
		return p, nil
	}
	var p Plan
	num := func(k, v string, max uint64) (uint64, error) {
		n, err := strconv.ParseUint(v, 0, 64)
		if err != nil {
			return 0, fmt.Errorf("fault: bad %s value %q", k, v)
		}
		if n > max {
			return 0, fmt.Errorf("fault: %s value %s out of range", k, v)
		}
		return n, nil
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok || v == "" {
			return Plan{}, fmt.Errorf("fault: bad spec element %q (want key=value)", part)
		}
		var err error
		var n uint64
		switch k {
		case "seed":
			n, err = num(k, v, math.MaxUint64)
			p.Seed = n
		case "rerr":
			n, err = num(k, v, 1000)
			p.ReadErrPermille = int(n)
		case "werr":
			n, err = num(k, v, 1000)
			p.WriteErrPermille = int(n)
		case "wait":
			n, err = num(k, v, 1000)
			p.WaitPermille = int(n)
		case "maxwait":
			n, err = num(k, v, math.MaxInt32)
			p.MaxExtraWait = int(n)
		case "corrupt":
			n, err = num(k, v, math.MaxUint32)
			p.CorruptMask = uint32(n)
		case "stretch":
			n, err = num(k, v, math.MaxInt32)
			p.BusyStretch = int(n)
		case "script":
			var s ScriptedFault
			s, err = parseScript(v)
			p.Scripted = append(p.Scripted, s)
		default:
			return Plan{}, fmt.Errorf("fault: unknown spec key %q", k)
		}
		if err != nil {
			return Plan{}, err
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// parseScript decodes one scripted window: <op>@<addr>+<after>x<count>.
func parseScript(v string) (ScriptedFault, error) {
	bad := func() (ScriptedFault, error) {
		return ScriptedFault{}, fmt.Errorf("fault: bad script %q (want op@addr+afterxcount)", v)
	}
	opPart, rest, ok := strings.Cut(v, "@")
	if !ok {
		return bad()
	}
	var s ScriptedFault
	switch opPart {
	case "read":
		s.Op = OpRead
	case "write":
		s.Op = OpWrite
	default:
		return bad()
	}
	addrPart, winPart, ok := strings.Cut(rest, "+")
	if !ok {
		return bad()
	}
	addr, err := strconv.ParseUint(addrPart, 0, 64)
	if err != nil {
		return bad()
	}
	s.Addr = addr
	afterPart, countPart, ok := strings.Cut(winPart, "x")
	if !ok {
		return bad()
	}
	after, err := strconv.ParseUint(afterPart, 0, 32)
	if err != nil {
		return bad()
	}
	count, err := strconv.ParseUint(countPart, 0, 32)
	if err != nil {
		return bad()
	}
	s.After, s.Count = uint32(after), uint32(count)
	return s, nil
}
