// Package fault is a deterministic fault-injection subsystem for the
// hierarchical EC bus models: it wraps any ecbus.Slave and perturbs its
// behaviour per a Plan — scripted or seeded-random bus errors on read
// and write data beats, wait-state storms through the dynamic-wait
// interface, stretching of EEPROM/Flash self-timed busy windows, and
// transient data corruption on error-flagged read beats.
//
// The EC interface the paper models (§3.1) carries a dedicated error
// indication on each unidirectional data bus, and slave-inserted wait
// states are the main source of timing divergence between the layers;
// this package turns those corner cases from dead code into an
// adversarial harness. The cross-layer equivalence property extends to
// faults: under the same plan, the layer-0, layer-1 and layer-2 models
// must report identical per-transaction outcomes and retry counts.
//
// # Determinism across layers
//
// The three bus models call the slave interface with different timing:
// layer 0 and layer 1 deliver one data beat per cycle, layer 2 performs
// the whole block at data-phase completion, and layer 2 samples dynamic
// wait states earlier than the others. Every injection decision is
// therefore a pure function of the access itself, never of simulation
// time:
//
//   - Data-beat errors depend on (operation, word address, per-word
//     access ordinal). Each direction of the EC interface serves its
//     queue strictly in order at every layer, so the n-th read (or
//     write) of a given word is the same logical beat everywhere —
//     including retries, which become ordinal n+1.
//   - Injected wait storms depend on (kind, address) only, so it does
//     not matter at which cycle a layer samples them.
//
// Only the busy-window stretch multiplies state the wrapped slave
// derives from the clock; it inherits the layer-2 sampling semantics of
// the underlying DynamicWaiter.
//
// Ordinal bookkeeping is per-injector, and an injector wraps exactly
// one slave of one address map — it is per-run state, never shared.
// Batched estimation (internal/batch) relies on this: each lane builds
// its own fault-wrapped map, so every run carries lane-local per-word
// ordinal streams, and a run batched next to 63 neighbours observes
// exactly the ordinal sequence — hence the fault schedule — of its own
// serial run. The golden fault-ordinal test pins that equivalence.
package fault

import (
	"fmt"

	"repro/internal/ecbus"
	"repro/internal/metrics"
)

// Op is the slave word-interface operation an injection targets.
type Op int

// Operations. OpRead covers both instruction fetches and data reads —
// the slave interface does not distinguish them.
const (
	OpRead Op = iota
	OpWrite
)

// String returns the operation name.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// ScriptedFault errors a deterministic window of accesses to one bus
// word: the first After accesses of the given operation succeed, then
// Count consecutive accesses fail (Count == 0 means every access from
// After on fails). Scripted faults are exact — they fire identically at
// every abstraction layer — and compose with the seeded-random knobs.
type ScriptedFault struct {
	Op    Op
	Addr  uint64 // word-aligned byte address of the failing beat
	After uint32 // accesses that succeed before the fault window opens
	Count uint32 // faulted accesses in the window; 0 = unbounded
}

// Plan parameterizes an Injector. The zero Plan injects nothing.
type Plan struct {
	// Seed drives the pseudo-random decisions. A zero seed disables the
	// random knobs (scripted faults still fire), so an explicitly seeded
	// plan is never confused with an unset one.
	Seed uint64

	// ReadErrPermille / WriteErrPermille are the per-beat probabilities
	// (in 1/1000) that a read or write data beat fails with a bus error.
	ReadErrPermille  int
	WriteErrPermille int

	// WaitPermille is the per-address probability (in 1/1000) that an
	// address phase to that address suffers an injected wait-state storm
	// of 1..MaxExtraWait extra cycles.
	WaitPermille int
	MaxExtraWait int

	// CorruptMask, when nonzero, is XORed onto the data of every
	// error-flagged read beat — the transient corruption that the error
	// wire tells the master not to consume.
	CorruptMask uint32

	// BusyStretch multiplies the wrapped slave's own dynamic wait
	// (EEPROM/Flash self-timed busy windows) by 1+BusyStretch,
	// modelling marginal memory cells that need longer programming.
	BusyStretch int

	// Scripted lists exact per-word fault windows.
	Scripted []ScriptedFault
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool {
	return p.Seed == 0 && p.BusyStretch == 0 && len(p.Scripted) == 0
}

// WithoutReadErrors returns a copy of the plan with read-beat error
// injection removed: the random read permille, the corruption mask and
// any scripted read windows. Read-beat errors are only sound on slaves
// whose reads are idempotent (memories): the injector flags the error
// after the wrapped read executed, so a retry replays the access — on a
// register with a destructive read (a pop latch, a FIFO) that would
// duplicate the side effect, a behaviour of the device rather than the
// bus. Wait storms, busy stretching and write errors (whose faulted
// beats never commit) are kept.
func (p Plan) WithoutReadErrors() Plan {
	p.ReadErrPermille = 0
	p.CorruptMask = 0
	if len(p.Scripted) > 0 {
		kept := make([]ScriptedFault, 0, len(p.Scripted))
		for _, s := range p.Scripted {
			if s.Op != OpRead {
				kept = append(kept, s)
			}
		}
		p.Scripted = kept
	}
	return p
}

// Validate checks the knobs for consistency.
func (p Plan) Validate() error {
	perm := func(name string, v int) error {
		if v < 0 || v > 1000 {
			return fmt.Errorf("fault: %s %d outside [0,1000]", name, v)
		}
		return nil
	}
	if err := perm("ReadErrPermille", p.ReadErrPermille); err != nil {
		return err
	}
	if err := perm("WriteErrPermille", p.WriteErrPermille); err != nil {
		return err
	}
	if err := perm("WaitPermille", p.WaitPermille); err != nil {
		return err
	}
	if p.MaxExtraWait < 0 {
		return fmt.Errorf("fault: negative MaxExtraWait %d", p.MaxExtraWait)
	}
	if p.WaitPermille > 0 && p.MaxExtraWait == 0 {
		return fmt.Errorf("fault: WaitPermille %d with MaxExtraWait 0", p.WaitPermille)
	}
	if p.BusyStretch < 0 {
		return fmt.Errorf("fault: negative BusyStretch %d", p.BusyStretch)
	}
	for i, s := range p.Scripted {
		if s.Addr&3 != 0 {
			return fmt.Errorf("fault: scripted[%d] address %#x not word aligned", i, s.Addr)
		}
		if s.Op != OpRead && s.Op != OpWrite {
			return fmt.Errorf("fault: scripted[%d] invalid op %d", i, int(s.Op))
		}
	}
	return nil
}

// Stats counts the injections an Injector performed. The error and
// corruption counters are layer-invariant (one count per faulted beat);
// the wait counters are diagnostics only — layers may sample the
// dynamic-wait interface a different number of times.
type Stats struct {
	ReadErrors  uint64 // read beats failed
	WriteErrors uint64 // write beats failed
	Corruptions uint64 // read beats corrupted alongside the error
	ExtraWaits  uint64 // injected storm cycles, summed over samples
	Stretched   uint64 // busy-window cycles added, summed over samples
}

// Injector wraps an ecbus.Slave and applies a Plan. It implements
// ecbus.Slave and ecbus.DynamicWaiter, and forwards the optional
// EnergyReporter extension, so it drops into any address map in place
// of the wrapped slave. An Injector belongs to one simulation context
// (it keeps per-word access counters); build a fresh one per run.
type Injector struct {
	inner ecbus.Slave
	plan  Plan

	// Ordinal bookkeeping. For slaves with a modest address range the
	// counters live in flat arrays indexed by word offset — the per-beat
	// hot path is then one array increment instead of two map operations.
	// Larger (or out-of-range) word addresses fall back to the maps.
	// passive marks an empty plan: no decision ever depends on the
	// ordinals, so the bookkeeping (unobservable in that case) is
	// skipped and data beats forward straight to the wrapped slave.
	passive   bool
	base      uint64
	flatWords uint64
	flatRead  []uint32
	flatWrite []uint32
	nRead     map[uint64]uint32 // accesses so far, per word address
	nWrite    map[uint64]uint32

	stats Stats
	mx    *metrics.Registry
}

// maxFlatWords bounds the flat ordinal arrays (1 MiB of counters per
// direction); slaves with larger ranges use the map path.
const maxFlatWords = 1 << 18

// Wrap builds an injector applying plan to s. It panics on an invalid
// plan — plans are built by tests and tools, not parsed from input.
func Wrap(s ecbus.Slave, plan Plan) *Injector {
	if err := plan.Validate(); err != nil {
		panic(err)
	}
	in := &Injector{inner: s, plan: plan, passive: plan.Empty()}
	if cfg := s.Config(); !in.passive && cfg.Size/4 <= maxFlatWords {
		in.base = cfg.Base &^ 3
		in.flatWords = (cfg.Size + 3) / 4
		in.flatRead = make([]uint32, in.flatWords)
		in.flatWrite = make([]uint32, in.flatWords)
	}
	return in
}

// ordinal returns the access count so far for (op, word) and increments
// it — the per-word ordinal stream both beatFaulty and the cross-layer
// determinism contract are defined over.
func (in *Injector) ordinal(op Op, word uint64) uint32 {
	if off := (word - in.base) / 4; off < in.flatWords {
		if op == OpRead {
			n := in.flatRead[off]
			in.flatRead[off] = n + 1
			return n
		}
		n := in.flatWrite[off]
		in.flatWrite[off] = n + 1
		return n
	}
	m := in.nWrite
	if op == OpRead {
		m = in.nRead
	}
	if m == nil {
		m = make(map[uint64]uint32)
		if op == OpRead {
			in.nRead = m
		} else {
			in.nWrite = m
		}
	}
	n := m[word]
	m[word] = n + 1
	return n
}

// Inner returns the wrapped slave.
func (in *Injector) Inner() ecbus.Slave { return in.inner }

// Passthrough implements ecbus.Passthrough: an injector with an empty
// plan never perturbs an access — data beats forward verbatim and
// ExtraWait reduces to the wrapped slave's own dynamic wait (no seed,
// no stretch) — so callers may bypass it entirely.
func (in *Injector) Passthrough() (ecbus.Slave, bool) { return in.inner, in.passive }

// Plan returns the active plan.
func (in *Injector) Plan() Plan { return in.plan }

// Stats returns a copy of the injection counters.
func (in *Injector) Stats() Stats { return in.stats }

// AttachMetrics mirrors every Stats increment into the registry's fault
// counters (nil detaches), so a run report shows injections alongside
// the bus-side retries and errored phases they caused.
func (in *Injector) AttachMetrics(reg *metrics.Registry) *Injector {
	in.mx = reg
	return in
}

// Config implements ecbus.Slave.
func (in *Injector) Config() ecbus.SlaveConfig { return in.inner.Config() }

// AccessEnergy forwards the wrapped slave's characterized access energy
// (0 when the slave reports none).
func (in *Injector) AccessEnergy(k ecbus.Kind) float64 {
	if r, ok := in.inner.(ecbus.EnergyReporter); ok {
		return r.AccessEnergy(k)
	}
	return 0
}

// splitmix64 is the avalanche mixer behind every pseudo-random decision:
// small, well-distributed, and trivially reproducible in any language.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Decision salts keep the independent random streams uncorrelated.
const (
	saltReadErr  = 0x5EED_0001
	saltWriteErr = 0x5EED_0002
	saltWaitHit  = 0x5EED_0003
	saltWaitLen  = 0x5EED_0004
	saltCorrupt  = 0x5EED_0005
)

// roll returns a uniform value in [0, 1000) for the salted key.
func (in *Injector) roll(salt uint64, word uint64, n uint32) uint64 {
	return splitmix64(in.plan.Seed^splitmix64(salt^word<<20^uint64(n))) % 1000
}

// beatFaulty decides whether the n-th access of op to word fails.
func (in *Injector) beatFaulty(op Op, word uint64, n uint32) bool {
	for _, s := range in.plan.Scripted {
		if s.Op == op && s.Addr == word && n >= s.After && (s.Count == 0 || n < s.After+s.Count) {
			return true
		}
	}
	if in.plan.Seed == 0 {
		return false
	}
	switch op {
	case OpRead:
		return in.plan.ReadErrPermille > 0 && in.roll(saltReadErr, word, n) < uint64(in.plan.ReadErrPermille)
	default:
		return in.plan.WriteErrPermille > 0 && in.roll(saltWriteErr, word, n) < uint64(in.plan.WriteErrPermille)
	}
}

// ReadWord implements ecbus.Slave: the wrapped read, plus injected
// errors and — on error-flagged beats — transient data corruption. The
// corrupted word is what the slave actually drives on the read data bus
// during the errored beat, so it is returned (and lands in the
// transaction payload) even though the error tells the master not to
// consume it.
func (in *Injector) ReadWord(addr uint64, w ecbus.Width) (uint32, bool) {
	if in.passive {
		return in.inner.ReadWord(addr, w)
	}
	word := addr &^ 3
	n := in.ordinal(OpRead, word)
	data, ok := in.inner.ReadWord(addr, w)
	if !ok {
		return data, false
	}
	if in.beatFaulty(OpRead, word, n) {
		in.stats.ReadErrors++
		in.mx.FaultReadError()
		if in.plan.CorruptMask != 0 {
			data ^= in.plan.CorruptMask
			in.stats.Corruptions++
			in.mx.FaultCorruption()
		}
		return data, false
	}
	return data, true
}

// WriteWord implements ecbus.Slave. An injected write error suppresses
// the underlying write entirely — the flagged beat never commits, as on
// a device that detects the failure before the array update.
func (in *Injector) WriteWord(addr uint64, data uint32, w ecbus.Width) bool {
	if in.passive {
		return in.inner.WriteWord(addr, data, w)
	}
	word := addr &^ 3
	n := in.ordinal(OpWrite, word)
	if in.beatFaulty(OpWrite, word, n) {
		in.stats.WriteErrors++
		in.mx.FaultWriteError()
		return false
	}
	return in.inner.WriteWord(addr, data, w)
}

// ExtraWait implements ecbus.DynamicWaiter: the wrapped slave's dynamic
// wait (stretched by BusyStretch) plus the injected wait-state storm.
// The storm term is a pure function of (kind, address) so every layer
// samples the same value regardless of when it asks.
func (in *Injector) ExtraWait(k ecbus.Kind, addr uint64) int {
	base := ecbus.ExtraWaitOf(in.inner, k, addr)
	if base > 0 && in.plan.BusyStretch > 0 {
		add := base * in.plan.BusyStretch
		in.stats.Stretched += uint64(add)
		in.mx.FaultStretch(add)
		base += add
	}
	if in.plan.Seed != 0 && in.plan.WaitPermille > 0 {
		key := addr<<2 | uint64(k)
		if in.roll(saltWaitHit, key, 0) < uint64(in.plan.WaitPermille) {
			storm := 1 + int(in.roll(saltWaitLen, key, 1))%in.plan.MaxExtraWait
			in.stats.ExtraWaits += uint64(storm)
			in.mx.FaultExtraWait(storm)
			base += storm
		}
	}
	return base
}
