package ecbus

// This file defines the canonical EC interface signal set. The layer-0
// model (package rtlbus) drives these wires cycle by cycle; the layer-1
// energy model reconstructs the same bundle from transaction state (the
// paper's "transaction level to RTL adapter") and prices its transitions;
// the characterization flow (package gatepower) keys its energy table by
// these signal IDs.

// SignalID indexes a wire group of the EC interface bundle.
type SignalID int

// EC interface signal groups. Names follow the EC interface specification
// convention (EB_ prefix). SigSel is the bus controller's decoder select
// output — a "subsequent hardware block" in the paper's terms, included
// because the layer-1 model prices decoder activity from the same bundle.
const (
	SigAValid SignalID = iota // master: address valid
	SigARdy                   // slave/controller: address accepted
	SigInstr                  // master: instruction fetch indicator
	SigWrite                  // master: write transaction indicator
	SigBurst                  // master: burst transaction indicator
	SigBFirst                 // master: first beat of burst
	SigBLast                  // master: last beat of burst
	SigBE                     // master: byte enables (4)
	SigA                      // master: address (36)
	SigWData                  // master: write data (32)
	SigRData                  // slave: read data (32)
	SigRdVal                  // slave: read data valid
	SigWDRdy                  // slave: write data accepted
	SigRBErr                  // slave: read bus error
	SigWBErr                  // slave: write bus error
	SigSel                    // controller-internal: decoder select (3)
	NumSignals
)

// SignalDef describes one wire group.
type SignalDef struct {
	ID   SignalID
	Name string
	Bits int
}

// Signals is the canonical bundle layout, indexed by SignalID.
var Signals = [NumSignals]SignalDef{
	{SigAValid, "EB_AValid", 1},
	{SigARdy, "EB_ARdy", 1},
	{SigInstr, "EB_Instr", 1},
	{SigWrite, "EB_Write", 1},
	{SigBurst, "EB_Burst", 1},
	{SigBFirst, "EB_BFirst", 1},
	{SigBLast, "EB_BLast", 1},
	{SigBE, "EB_BE", 4},
	{SigA, "EB_A", AddrBits},
	{SigWData, "EB_WData", DataBits},
	{SigRData, "EB_RData", DataBits},
	{SigRdVal, "EB_RdVal", 1},
	{SigWDRdy, "EB_WDRdy", 1},
	{SigRBErr, "EB_RBErr", 1},
	{SigWBErr, "EB_WBErr", 1},
	{SigSel, "BC_Sel", 3},
}

// String returns the EC specification name of the signal.
func (id SignalID) String() string {
	if id < 0 || id >= NumSignals {
		return "EB_?"
	}
	return Signals[id].Name
}

// Bits returns the wire count of the signal group.
func (id SignalID) Bits() int {
	if id < 0 || id >= NumSignals {
		return 0
	}
	return Signals[id].Bits
}

// TotalWires returns the number of physical wires in the bundle.
func TotalWires() int {
	n := 0
	for _, s := range Signals {
		n += s.Bits
	}
	return n
}

// signalMask holds the width mask of every signal group, precomputed so
// the per-cycle Set path never rebuilds it.
var signalMask = func() (m [NumSignals]uint64) {
	for i, s := range Signals {
		if s.Bits >= 64 {
			m[i] = ^uint64(0)
		} else {
			m[i] = (uint64(1) << uint(s.Bits)) - 1
		}
	}
	return m
}()

// MaskOf returns the precomputed width mask of signal id.
func MaskOf(id SignalID) uint64 { return signalMask[id] }

// Bundle is one cycle's value of every EC interface signal group, plus a
// dirty mask recording which groups have been written to a *different*
// value since the mask was last taken.
//
// Dirty-mask contract: Set and SetBool are the only write paths; they
// mark a signal dirty exactly when its value changes. A per-cycle
// consumer (the gate-level estimator, the layer-1 transition counter)
// calls TakeDirty once per observation, iterates only the returned bits,
// and thereby stays aligned with its own previous-value snapshot. The
// mask is a superset of the actual transitions: a signal written away
// and back within one cycle is dirty but equal, so consumers still
// compare values. Values wider than the group width are impossible
// through this API; Normalize remains for defensive masking.
type Bundle struct {
	v     [NumSignals]uint64
	dirty uint32
}

// Normalize masks every group to its width and returns the bundle.
// Groups whose value changes are marked dirty.
func (b *Bundle) Normalize() *Bundle {
	for i := range b.v {
		if m := b.v[i] & signalMask[i]; m != b.v[i] {
			b.v[i] = m
			b.dirty |= 1 << uint(i)
		}
	}
	return b
}

// Set assigns value v (masked to the group width) to signal id, marking
// it dirty if the value changed.
func (b *Bundle) Set(id SignalID, v uint64) {
	v &= signalMask[id]
	if b.v[id] != v {
		b.v[id] = v
		b.dirty |= 1 << uint(id)
	}
}

// SetBool assigns a single-bit signal, marking it dirty if it changed.
func (b *Bundle) SetBool(id SignalID, v bool) {
	var x uint64
	if v {
		x = 1
	}
	if b.v[id] != x {
		b.v[id] = x
		b.dirty |= 1 << uint(id)
	}
}

// Get returns the value of signal id.
func (b *Bundle) Get(id SignalID) uint64 { return b.v[id] }

// Bool returns a single-bit signal as bool.
func (b *Bundle) Bool(id SignalID) bool { return b.v[id] != 0 }

// Snapshot returns a copy of the raw signal values.
func (b *Bundle) Snapshot() [NumSignals]uint64 { return b.v }

// Dirty returns the dirty mask (bit i set = signal i written to a new
// value since the last TakeDirty).
func (b *Bundle) Dirty() uint32 { return b.dirty }

// TakeDirty returns the dirty mask and clears it. The per-cycle consumer
// that maintains a previous-value snapshot owns this call; a bundle must
// have exactly one such consumer.
func (b *Bundle) TakeDirty() uint32 {
	d := b.dirty
	b.dirty = 0
	return d
}

// MarkAllDirty flags every signal dirty, forcing the next delta-driven
// observation to scan the full bundle.
func (b *Bundle) MarkAllDirty() {
	b.dirty = 1<<uint(NumSignals) - 1
}
