package ecbus

// This file defines the canonical EC interface signal set. The layer-0
// model (package rtlbus) drives these wires cycle by cycle; the layer-1
// energy model reconstructs the same bundle from transaction state (the
// paper's "transaction level to RTL adapter") and prices its transitions;
// the characterization flow (package gatepower) keys its energy table by
// these signal IDs.

// SignalID indexes a wire group of the EC interface bundle.
type SignalID int

// EC interface signal groups. Names follow the EC interface specification
// convention (EB_ prefix). SigSel is the bus controller's decoder select
// output — a "subsequent hardware block" in the paper's terms, included
// because the layer-1 model prices decoder activity from the same bundle.
const (
	SigAValid SignalID = iota // master: address valid
	SigARdy                   // slave/controller: address accepted
	SigInstr                  // master: instruction fetch indicator
	SigWrite                  // master: write transaction indicator
	SigBurst                  // master: burst transaction indicator
	SigBFirst                 // master: first beat of burst
	SigBLast                  // master: last beat of burst
	SigBE                     // master: byte enables (4)
	SigA                      // master: address (36)
	SigWData                  // master: write data (32)
	SigRData                  // slave: read data (32)
	SigRdVal                  // slave: read data valid
	SigWDRdy                  // slave: write data accepted
	SigRBErr                  // slave: read bus error
	SigWBErr                  // slave: write bus error
	SigSel                    // controller-internal: decoder select (3)
	NumSignals
)

// SignalDef describes one wire group.
type SignalDef struct {
	ID   SignalID
	Name string
	Bits int
}

// Signals is the canonical bundle layout, indexed by SignalID.
var Signals = [NumSignals]SignalDef{
	{SigAValid, "EB_AValid", 1},
	{SigARdy, "EB_ARdy", 1},
	{SigInstr, "EB_Instr", 1},
	{SigWrite, "EB_Write", 1},
	{SigBurst, "EB_Burst", 1},
	{SigBFirst, "EB_BFirst", 1},
	{SigBLast, "EB_BLast", 1},
	{SigBE, "EB_BE", 4},
	{SigA, "EB_A", AddrBits},
	{SigWData, "EB_WData", DataBits},
	{SigRData, "EB_RData", DataBits},
	{SigRdVal, "EB_RdVal", 1},
	{SigWDRdy, "EB_WDRdy", 1},
	{SigRBErr, "EB_RBErr", 1},
	{SigWBErr, "EB_WBErr", 1},
	{SigSel, "BC_Sel", 3},
}

// String returns the EC specification name of the signal.
func (id SignalID) String() string {
	if id < 0 || id >= NumSignals {
		return "EB_?"
	}
	return Signals[id].Name
}

// Bits returns the wire count of the signal group.
func (id SignalID) Bits() int {
	if id < 0 || id >= NumSignals {
		return 0
	}
	return Signals[id].Bits
}

// TotalWires returns the number of physical wires in the bundle.
func TotalWires() int {
	n := 0
	for _, s := range Signals {
		n += s.Bits
	}
	return n
}

// Bundle is one cycle's value of every EC interface signal group. Values
// wider than their Bits are a modelling error; Normalize masks them.
type Bundle [NumSignals]uint64

// Normalize masks every group to its width and returns the bundle.
func (b *Bundle) Normalize() *Bundle {
	for i := range b {
		w := Signals[i].Bits
		if w < 64 {
			b[i] &= (uint64(1) << uint(w)) - 1
		}
	}
	return b
}

// Set assigns value v (masked to the group width) to signal id.
func (b *Bundle) Set(id SignalID, v uint64) {
	w := Signals[id].Bits
	if w < 64 {
		v &= (uint64(1) << uint(w)) - 1
	}
	b[id] = v
}

// SetBool assigns a single-bit signal.
func (b *Bundle) SetBool(id SignalID, v bool) {
	if v {
		b[id] = 1
	} else {
		b[id] = 0
	}
}

// Get returns the value of signal id.
func (b *Bundle) Get(id SignalID) uint64 { return b[id] }

// Bool returns a single-bit signal as bool.
func (b *Bundle) Bool(id SignalID) bool { return b[id] != 0 }
