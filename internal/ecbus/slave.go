package ecbus

import "fmt"

// SlaveConfig is the slave control information exposed through the slave
// control interface of the paper's layer-1 model: "the address range of
// the slave, wait states for address, read and write phases, and bits to
// indicate the access rights like read, write, and execute".
type SlaveConfig struct {
	Name string
	Base uint64 // first byte address, AddrBits wide
	Size uint64 // size in bytes

	AddrWait  int // wait states before the address phase completes
	ReadWait  int // wait states before each read data word
	WriteWait int // wait states before each write data word

	Readable   bool
	Writable   bool
	Executable bool
}

// Contains reports whether the address falls inside the slave's range.
func (c SlaveConfig) Contains(addr uint64) bool {
	return addr >= c.Base && addr < c.Base+c.Size
}

// End returns one past the last byte address of the range.
func (c SlaveConfig) End() uint64 { return c.Base + c.Size }

// Allows reports whether the access kind is permitted by the rights bits.
func (c SlaveConfig) Allows(k Kind) bool {
	switch k {
	case Fetch:
		return c.Executable
	case Read:
		return c.Readable
	case Write:
		return c.Writable
	default:
		return false
	}
}

// Validate checks internal consistency.
func (c SlaveConfig) Validate() error {
	if c.Size == 0 {
		return fmt.Errorf("ecbus: slave %q has zero size", c.Name)
	}
	if c.Base&^AddrMask != 0 || (c.Base+c.Size-1)&^AddrMask != 0 {
		return fmt.Errorf("ecbus: slave %q range [%#x,%#x) exceeds address space", c.Name, c.Base, c.End())
	}
	if c.AddrWait < 0 || c.ReadWait < 0 || c.WriteWait < 0 {
		return fmt.Errorf("ecbus: slave %q has negative wait states", c.Name)
	}
	return nil
}

// Slave is the functional behaviour of a bus slave, shared by every
// abstraction level: the layer models wrap it with the appropriate
// timing (wait states from Config) and signalling.
//
// ReadWord/WriteWord operate on one bus word; addr selects the word and,
// together with width, the active byte lanes. Implementations return
// false to signal a slave-side bus error (beyond decode/rights errors,
// which the bus controller raises itself).
type Slave interface {
	Config() SlaveConfig
	ReadWord(addr uint64, w Width) (uint32, bool)
	WriteWord(addr uint64, data uint32, w Width) bool
}

// DynamicWaiter is an optional Slave extension for state-dependent wait
// states (e.g. an EEPROM that stalls reads while a programming cycle is
// in progress). The returned value is added to the static wait states.
type DynamicWaiter interface {
	ExtraWait(k Kind, addr uint64) int
}

// ExtraWaitOf returns the dynamic extra wait of s for the access, or 0.
func ExtraWaitOf(s Slave, k Kind, addr uint64) int {
	if d, ok := s.(DynamicWaiter); ok {
		return d.ExtraWait(k, addr)
	}
	return 0
}

// Passthrough is an optional Slave extension for wrappers that can be
// behaviorally transparent: when the second result is true, every
// Slave/DynamicWaiter call on the wrapper is a pure delegation to the
// returned inner slave, so hot paths may call the inner slave directly.
type Passthrough interface {
	Passthrough() (Slave, bool)
}

// Unwrap peels transparent wrappers off a slave chain.
func Unwrap(s Slave) Slave {
	for {
		p, ok := s.(Passthrough)
		if !ok {
			return s
		}
		inner, transparent := p.Passthrough()
		if !transparent {
			return s
		}
		s = inner
	}
}

// EnergyReporter is an optional Slave extension: peripherals with
// characterized internal access energy (the paper's future-work item)
// report it here; the platform energy accounting adds it to bus energy.
type EnergyReporter interface {
	// AccessEnergy returns the internal energy in joules dissipated by
	// one access of the given kind.
	AccessEnergy(k Kind) float64
}

// Map is the bus controller's address decoder: an ordered set of
// non-overlapping slave ranges. The configs are snapshotted at Add time
// — every Slave in this codebase returns a fixed config — so the decode
// fast path runs on a flat array instead of chasing Config() through
// wrapper interfaces on every lookup.
type Map struct {
	slaves  []Slave
	configs []SlaveConfig
}

// NewMap builds an address map from the given slaves, rejecting invalid
// configs and overlapping ranges.
func NewMap(slaves ...Slave) (*Map, error) {
	m := &Map{}
	for _, s := range slaves {
		if err := m.Add(s); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// MustMap is NewMap that panics on error, for tests and examples.
func MustMap(slaves ...Slave) *Map {
	m, err := NewMap(slaves...)
	if err != nil {
		panic(err)
	}
	return m
}

// Add inserts a slave, keeping ranges sorted and rejecting overlap.
func (m *Map) Add(s Slave) error {
	c := s.Config()
	if err := c.Validate(); err != nil {
		return err
	}
	for _, ex := range m.slaves {
		e := ex.Config()
		if c.Base < e.End() && e.Base < c.End() {
			return fmt.Errorf("ecbus: slave %q [%#x,%#x) overlaps %q [%#x,%#x)",
				c.Name, c.Base, c.End(), e.Name, e.Base, e.End())
		}
	}
	m.slaves = append(m.slaves, s)
	m.configs = append(m.configs, c)
	// Keep sorted by base for deterministic decode and iteration.
	for i := len(m.slaves) - 1; i > 0; i-- {
		if m.configs[i].Base < m.configs[i-1].Base {
			m.slaves[i], m.slaves[i-1] = m.slaves[i-1], m.slaves[i]
			m.configs[i], m.configs[i-1] = m.configs[i-1], m.configs[i]
		}
	}
	return nil
}

// Decode returns the slave containing addr, or nil for a decode miss
// (which the bus controller turns into a bus error).
func (m *Map) Decode(addr uint64) Slave {
	// Linear scan: smart-card maps have a handful of slaves, and this is
	// on the simulator fast path, where branch-predictable scans beat
	// binary search at these sizes.
	for i := range m.configs {
		if m.configs[i].Contains(addr) {
			return m.slaves[i]
		}
	}
	return nil
}

// Slaves returns the slaves in ascending base-address order.
func (m *Map) Slaves() []Slave { return m.slaves }

// ConfigAt returns the snapshotted config of the i-th slave (the Index
// numbering) without an interface call through the slave.
func (m *Map) ConfigAt(i int) SlaveConfig { return m.configs[i] }

// Check verifies that an access of the given kind/extent decodes to one
// slave with sufficient rights. It returns the slave and nil, or nil and
// a descriptive error.
func (m *Map) Check(kind Kind, addr uint64, bytes int) (Slave, error) {
	i := m.Index(addr)
	if i < 0 {
		return nil, fmt.Errorf("ecbus: decode miss at %#x", addr)
	}
	c := &m.configs[i]
	if bytes > 0 && !c.Contains(addr+uint64(bytes)-1) {
		return nil, fmt.Errorf("ecbus: access [%#x,+%d) crosses end of slave %q", addr, bytes, c.Name)
	}
	if !c.Allows(kind) {
		return nil, fmt.Errorf("ecbus: %v access to %q at %#x denied", kind, c.Name, addr)
	}
	return m.slaves[i], nil
}

// Index returns the position of the slave whose range contains addr, or
// -1. The index is used by the layer-0 model as the decoder select value
// (and so contributes decoder output transitions to the energy model).
func (m *Map) Index(addr uint64) int {
	for i := range m.configs {
		if m.configs[i].Contains(addr) {
			return i
		}
	}
	return -1
}
