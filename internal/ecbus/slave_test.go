package ecbus

import (
	"strings"
	"testing"
)

// fakeSlave is a minimal Slave for map/decode tests.
type fakeSlave struct {
	cfg   SlaveConfig
	extra int
}

func (f *fakeSlave) Config() SlaveConfig                   { return f.cfg }
func (f *fakeSlave) ReadWord(uint64, Width) (uint32, bool) { return 0xA5A5A5A5, true }
func (f *fakeSlave) WriteWord(uint64, uint32, Width) bool  { return true }
func (f *fakeSlave) ExtraWait(Kind, uint64) int            { return f.extra }
func newFake(name string, base, size uint64) *fakeSlave {
	return &fakeSlave{cfg: SlaveConfig{
		Name: name, Base: base, Size: size,
		Readable: true, Writable: true, Executable: true,
	}}
}

func TestSlaveConfigContains(t *testing.T) {
	c := SlaveConfig{Name: "rom", Base: 0x1000, Size: 0x100}
	if !c.Contains(0x1000) || !c.Contains(0x10FF) {
		t.Fatal("range endpoints not contained")
	}
	if c.Contains(0xFFF) || c.Contains(0x1100) {
		t.Fatal("outside addresses contained")
	}
	if c.End() != 0x1100 {
		t.Fatalf("End = %#x", c.End())
	}
}

func TestSlaveConfigRights(t *testing.T) {
	c := SlaveConfig{Readable: true}
	if !c.Allows(Read) || c.Allows(Write) || c.Allows(Fetch) {
		t.Fatal("rights wrong for read-only")
	}
	c = SlaveConfig{Executable: true}
	if !c.Allows(Fetch) || c.Allows(Read) {
		t.Fatal("rights wrong for execute-only")
	}
	if c.Allows(Kind(7)) {
		t.Fatal("unknown kind allowed")
	}
}

func TestSlaveConfigValidate(t *testing.T) {
	if err := (SlaveConfig{Name: "z", Size: 0}).Validate(); err == nil {
		t.Fatal("zero size accepted")
	}
	if err := (SlaveConfig{Name: "w", Base: AddrMask, Size: 0x100}).Validate(); err == nil {
		t.Fatal("range beyond address space accepted")
	}
	if err := (SlaveConfig{Name: "n", Size: 4, AddrWait: -1}).Validate(); err == nil {
		t.Fatal("negative wait states accepted")
	}
	if err := (SlaveConfig{Name: "ok", Base: 0, Size: 4}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestMapDecode(t *testing.T) {
	m := MustMap(
		newFake("rom", 0x0000, 0x1000),
		newFake("ram", 0x8000, 0x800),
		newFake("uart", 0xF000, 0x100),
	)
	if s := m.Decode(0x10); s == nil || s.Config().Name != "rom" {
		t.Fatal("rom not decoded")
	}
	if s := m.Decode(0x8123); s == nil || s.Config().Name != "ram" {
		t.Fatal("ram not decoded")
	}
	if s := m.Decode(0x7000); s != nil {
		t.Fatal("hole decoded to a slave")
	}
	if m.Index(0xF020) != 2 {
		t.Fatalf("Index(uart) = %d, want 2", m.Index(0xF020))
	}
	if m.Index(0x7000) != -1 {
		t.Fatal("Index of hole != -1")
	}
}

func TestMapRejectsOverlap(t *testing.T) {
	_, err := NewMap(newFake("a", 0x0, 0x100), newFake("b", 0x80, 0x100))
	if err == nil || !strings.Contains(err.Error(), "overlaps") {
		t.Fatalf("overlap not rejected: %v", err)
	}
}

func TestMapSortedByBase(t *testing.T) {
	m := MustMap(newFake("hi", 0x9000, 0x10), newFake("lo", 0x1000, 0x10), newFake("mid", 0x5000, 0x10))
	names := []string{}
	for _, s := range m.Slaves() {
		names = append(names, s.Config().Name)
	}
	want := []string{"lo", "mid", "hi"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("slave order %v, want %v", names, want)
		}
	}
}

func TestMapCheck(t *testing.T) {
	ro := newFake("rom", 0x0, 0x100)
	ro.cfg.Writable = false
	m := MustMap(ro, newFake("ram", 0x200, 0x100))

	if _, err := m.Check(Read, 0x10, 4); err != nil {
		t.Fatalf("legal read rejected: %v", err)
	}
	if _, err := m.Check(Write, 0x10, 4); err == nil {
		t.Fatal("write to read-only rom allowed")
	}
	if _, err := m.Check(Read, 0x150, 4); err == nil {
		t.Fatal("decode miss not reported")
	}
	if _, err := m.Check(Read, 0xFC, 16); err == nil {
		t.Fatal("burst crossing slave end allowed")
	}
}

func TestExtraWaitOf(t *testing.T) {
	f := newFake("ee", 0, 0x100)
	f.extra = 7
	if got := ExtraWaitOf(f, Read, 0); got != 7 {
		t.Fatalf("ExtraWaitOf = %d, want 7", got)
	}
	// A slave without the extension contributes zero.
	plain := struct{ Slave }{f}
	_ = plain
}

func TestBundleSetGet(t *testing.T) {
	var b Bundle
	b.Set(SigA, ^uint64(0))
	if b.Get(SigA) != AddrMask {
		t.Fatalf("SigA not masked: %#x", b.Get(SigA))
	}
	b.Set(SigBE, 0xFF)
	if b.Get(SigBE) != 0xF {
		t.Fatalf("SigBE not masked: %#x", b.Get(SigBE))
	}
	b.SetBool(SigAValid, true)
	if !b.Bool(SigAValid) {
		t.Fatal("SetBool/Bool round trip failed")
	}
	b.SetBool(SigAValid, false)
	if b.Bool(SigAValid) {
		t.Fatal("SetBool(false) failed")
	}
}

func TestBundleNormalize(t *testing.T) {
	var b Bundle
	for i := range b.v {
		b.v[i] = ^uint64(0)
	}
	b.Normalize()
	for i := range b.v {
		w := Signals[i].Bits
		if w < 64 && b.v[i] != (uint64(1)<<uint(w))-1 {
			t.Fatalf("signal %v not normalized: %#x", SignalID(i), b.v[i])
		}
		if b.Dirty()&(1<<uint(i)) == 0 && w < 64 {
			t.Fatalf("signal %v normalized but not marked dirty", SignalID(i))
		}
	}
}

func TestSignalTableConsistent(t *testing.T) {
	for i, s := range Signals {
		if s.ID != SignalID(i) {
			t.Fatalf("Signals[%d].ID = %d, table out of order", i, s.ID)
		}
		if s.Bits <= 0 || s.Bits > 64 {
			t.Fatalf("signal %s has invalid width %d", s.Name, s.Bits)
		}
		if s.Name == "" {
			t.Fatalf("signal %d unnamed", i)
		}
	}
	if TotalWires() < AddrBits+2*DataBits {
		t.Fatalf("TotalWires = %d implausibly small", TotalWires())
	}
	if SignalID(-1).String() != "EB_?" || SignalID(NumSignals).Bits() != 0 {
		t.Fatal("out-of-range SignalID helpers wrong")
	}
}
