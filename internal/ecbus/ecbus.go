// Package ecbus defines the vocabulary of the EC interface — the
// processor/peripheral interface of the MIPS 4K smart-card core family —
// shared by every abstraction level in this repository (layer 0 signal
// model, transaction-level layers 1 and 2).
//
// Protocol subset modelled (from the paper's description of the EC
// interface specification):
//
//   - 36-bit address bus, 32-bit data buses.
//   - All signals unidirectional; separate read and write data buses,
//     each with its own bus-error indication.
//   - Separated address and data phases allow pipelining.
//   - The core limits outstanding transactions to four burst instruction
//     reads, four burst data reads and four burst writes.
//   - Address and data phases can complete in the cycle they are
//     initiated; wait states are inserted per the slave's configuration.
//   - The interface natively supports one master and one slave; a bus
//     controller (address decoder + control logic) multiplexes slaves.
//   - 8-, 16- and 32-bit accesses follow the EC merge patterns (byte
//     enables derived from the low address bits); bursts are four
//     32-bit words, sequential, 16-byte aligned.
package ecbus

import "fmt"

// Architectural constants of the modelled EC interface.
const (
	AddrBits       = 36 // address bus width
	DataBits       = 32 // read and write data bus width
	BurstLen       = 4  // words per burst transaction
	MaxOutstanding = 4  // per category: burst I-read, burst D-read, burst write
)

// AddrMask masks a value to the architectural address width.
const AddrMask = (uint64(1) << AddrBits) - 1

// Kind identifies the direction/purpose of a transaction.
type Kind int

// Transaction kinds. Fetch is an instruction read issued on the master's
// dedicated instruction interface; Read and Write are data accesses.
const (
	Fetch Kind = iota
	Read
	Write
)

// String returns the kind mnemonic.
func (k Kind) String() string {
	switch k {
	case Fetch:
		return "fetch"
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IsRead reports whether the kind moves data from slave to master.
func (k Kind) IsRead() bool { return k == Fetch || k == Read }

// Category is the outstanding-transaction accounting class of the EC
// interface: the core allows MaxOutstanding of each.
type Category int

// Outstanding-transaction categories.
const (
	CatInstrRead Category = iota
	CatDataRead
	CatWrite
	NumCategories
)

// String returns the category name.
func (c Category) String() string {
	switch c {
	case CatInstrRead:
		return "instr-read"
	case CatDataRead:
		return "data-read"
	case CatWrite:
		return "write"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// CategoryOf returns the accounting category for a transaction kind.
func CategoryOf(k Kind) Category {
	switch k {
	case Fetch:
		return CatInstrRead
	case Read:
		return CatDataRead
	default:
		return CatWrite
	}
}

// Width is the access width of a non-burst transaction.
type Width int

// Access widths corresponding to the EC merge patterns.
const (
	W8  Width = 1
	W16 Width = 2
	W32 Width = 4
)

// Bits returns the number of data bits moved by the width.
func (w Width) Bits() int { return int(w) * 8 }

// Valid reports whether w is one of the defined widths.
func (w Width) Valid() bool { return w == W8 || w == W16 || w == W32 }

// String returns the width in bits as text.
func (w Width) String() string { return fmt.Sprintf("%d-bit", w.Bits()) }

// ByteEnables returns the EC merge-pattern byte-enable mask (bit i set =
// byte lane i active) for an access of width w at address addr, and
// whether the combination is legal (naturally aligned).
func ByteEnables(addr uint64, w Width) (uint8, bool) {
	lane := addr & 3
	switch w {
	case W8:
		return uint8(1) << lane, true
	case W16:
		if lane&1 != 0 {
			return 0, false
		}
		return uint8(0b11) << lane, true
	case W32:
		if lane != 0 {
			return 0, false
		}
		return 0b1111, true
	default:
		return 0, false
	}
}

// BusState is the return state of the non-blocking layer-1 interfaces
// ("request, wait, ok, or error" in the paper).
type BusState int

// Layer-1 interface states. StateRequest means the request has been
// accepted into the bus; StateWait means it is in progress; StateOK means
// it finished; StateError indicates a bus error.
const (
	StateRequest BusState = iota
	StateWait
	StateOK
	StateError
)

// String returns the state name.
func (s BusState) String() string {
	switch s {
	case StateRequest:
		return "request"
	case StateWait:
		return "wait"
	case StateOK:
		return "ok"
	case StateError:
		return "error"
	default:
		return fmt.Sprintf("BusState(%d)", int(s))
	}
}

// Done reports whether the state is terminal (OK or Error).
func (s BusState) Done() bool { return s == StateOK || s == StateError }

// Transaction is one EC bus transaction at any abstraction level. For a
// burst, Data holds BurstLen words; otherwise exactly one word carrying
// the active byte lanes.
//
// The timing result fields are filled in by the bus models; cycle numbers
// refer to the kernel cycle during which the corresponding event
// completed.
type Transaction struct {
	ID    uint64
	Kind  Kind
	Addr  uint64 // byte address, masked to AddrBits
	Width Width  // ignored for bursts (always W32)
	Burst bool
	Data  []uint32 // write payload in, read result out

	// Result fields.
	Done       bool
	Err        bool
	Retries    int32  // completed attempts that ended in a bus error and were re-issued; int32 to fit the padding after the flags
	IssueCycle uint64 // cycle the master first presented the request
	AddrCycle  uint64 // cycle the address phase completed
	DataCycle  uint64 // cycle the final data phase completed
}

// Words returns the number of data words the transaction moves.
func (t *Transaction) Words() int {
	if t.Burst {
		return BurstLen
	}
	return 1
}

// Category returns the outstanding-transaction category.
func (t *Transaction) Category() Category { return CategoryOf(t.Kind) }

// Validate checks structural legality: alignment for the width, burst
// alignment and payload size. It does not check the address map.
func (t *Transaction) Validate() error {
	if t.Addr != t.Addr&AddrMask {
		return fmt.Errorf("ecbus: address %#x exceeds %d bits", t.Addr, AddrBits)
	}
	if t.Burst {
		if t.Addr%(BurstLen*4) != 0 {
			return fmt.Errorf("ecbus: burst address %#x not %d-byte aligned", t.Addr, BurstLen*4)
		}
		if len(t.Data) != BurstLen {
			return fmt.Errorf("ecbus: burst payload has %d words, want %d", len(t.Data), BurstLen)
		}
		return nil
	}
	if !t.Width.Valid() {
		return fmt.Errorf("ecbus: invalid width %d", int(t.Width))
	}
	if _, ok := ByteEnables(t.Addr, t.Width); !ok {
		return fmt.Errorf("ecbus: %v access at %#x misaligned", t.Width, t.Addr)
	}
	if len(t.Data) != 1 {
		return fmt.Errorf("ecbus: single transaction payload has %d words, want 1", len(t.Data))
	}
	return nil
}

// Clone returns a deep copy of the transaction (fresh Data slice).
func (t *Transaction) Clone() *Transaction {
	c := *t
	c.Data = append([]uint32(nil), t.Data...)
	return &c
}

// String renders a compact human-readable form for traces and tests.
func (t *Transaction) String() string {
	b := ""
	if t.Burst {
		b = " burst"
	}
	return fmt.Sprintf("#%d %s%s @%#09x %v", t.ID, t.Kind, b, t.Addr, t.Width)
}

// NewSingle builds a validated single-word transaction. Write data is the
// low Width bytes of data placed on the correct byte lanes.
func NewSingle(id uint64, kind Kind, addr uint64, w Width, data uint32) (*Transaction, error) {
	t := &Transaction{}
	if err := t.ResetSingle(id, kind, addr, w, data); err != nil {
		return nil, err
	}
	return t, nil
}

// NewBurst builds a validated burst transaction. For writes, data must
// hold BurstLen words; for reads it may be nil and is allocated.
func NewBurst(id uint64, kind Kind, addr uint64, data []uint32) (*Transaction, error) {
	if data == nil {
		data = make([]uint32, BurstLen)
	}
	t := &Transaction{ID: id, Kind: kind, Addr: addr & AddrMask, Width: W32, Burst: true, Data: data}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ResetSingle reinitializes t in place as a single-word transaction,
// clearing the result fields and reusing the Data slice. It is the
// allocation-free variant of NewSingle for blocking masters that pool
// one transaction object across calls. A transaction may only be reset
// once its previous use has completed (Done, or never issued): the bus
// models drop their reference to a transaction when it finishes, so a
// completed object is exclusively the master's again.
func (t *Transaction) ResetSingle(id uint64, kind Kind, addr uint64, w Width, data uint32) error {
	if cap(t.Data) < 1 {
		t.Data = make([]uint32, 1)
	}
	t.Data = t.Data[:1]
	t.Data[0] = data
	t.ID, t.Kind, t.Addr, t.Width, t.Burst = id, kind, addr&AddrMask, w, false
	t.Done, t.Err, t.Retries = false, false, 0
	t.IssueCycle, t.AddrCycle, t.DataCycle = 0, 0, 0
	return t.Validate()
}

// ResetBurst reinitializes t in place as a burst transaction under the
// same pooling contract as ResetSingle. The Data slice is resized to
// BurstLen (reusing capacity) and zeroed — a pooled object whose previous
// use was a read that errored mid-burst still carries the earlier
// payload in the beats the error never reached, and that payload must
// not leak into the next use. For writes the caller fills the slice
// before issuing the transaction.
func (t *Transaction) ResetBurst(id uint64, kind Kind, addr uint64) error {
	if cap(t.Data) < BurstLen {
		t.Data = make([]uint32, BurstLen)
	}
	t.Data = t.Data[:BurstLen]
	for i := range t.Data {
		t.Data[i] = 0
	}
	t.ID, t.Kind, t.Addr, t.Width, t.Burst = id, kind, addr&AddrMask, W32, true
	t.Done, t.Err, t.Retries = false, false, 0
	t.IssueCycle, t.AddrCycle, t.DataCycle = 0, 0, 0
	return t.Validate()
}

// ResetForRetry clears the result fields of a completed transaction so a
// master can re-issue it after a bus error, incrementing the retry
// counter. Read payloads are zeroed: an errored read may have deposited
// corrupted beats, and a retry must not expose them if the next attempt
// errors earlier than this one did. Write payloads are preserved — the
// retry re-sends the same data. The pooling contract of ResetSingle
// applies: only a Done transaction may be reset.
func (t *Transaction) ResetForRetry() {
	if t.Kind.IsRead() {
		for i := range t.Data {
			t.Data[i] = 0
		}
	}
	t.Retries++
	t.Done, t.Err = false, false
	t.IssueCycle, t.AddrCycle, t.DataCycle = 0, 0, 0
}
