package ecbus

import "testing"

// The dirty-mask contract (see Bundle): Set/SetBool mark a signal dirty
// only when the stored value actually changes; TakeDirty returns and
// clears the accumulated mask; dirty is a superset of real transitions
// for the single per-cycle consumer.

func TestDirtySetOnlyOnChange(t *testing.T) {
	var b Bundle
	if b.Dirty() != 0 {
		t.Fatal("fresh bundle dirty")
	}
	b.Set(SigA, 0x1234)
	if b.Dirty() != 1<<uint(SigA) {
		t.Fatalf("dirty = %#x after first Set", b.Dirty())
	}
	if got := b.TakeDirty(); got != 1<<uint(SigA) {
		t.Fatalf("TakeDirty = %#x", got)
	}
	if b.Dirty() != 0 {
		t.Fatal("TakeDirty did not clear")
	}
	// Re-driving the identical value must not re-mark.
	b.Set(SigA, 0x1234)
	if b.Dirty() != 0 {
		t.Fatal("identical Set marked dirty")
	}
	b.SetBool(SigAValid, false) // already false
	if b.Dirty() != 0 {
		t.Fatal("identical SetBool marked dirty")
	}
	b.SetBool(SigAValid, true)
	if b.Dirty() != 1<<uint(SigAValid) {
		t.Fatalf("dirty = %#x after SetBool change", b.Dirty())
	}
}

// A value written away and back within one cycle leaves the signal dirty
// with old == new — the consumer must treat dirty as a superset of
// transitions, not as proof of one.
func TestDirtySupersetOfTransitions(t *testing.T) {
	var b Bundle
	b.Set(SigRData, 7)
	b.TakeDirty()
	b.Set(SigRData, 9)
	b.Set(SigRData, 7) // back to the consumer-visible old value
	if b.Dirty()&(1<<uint(SigRData)) == 0 {
		t.Fatal("write-away-and-back lost the dirty bit")
	}
	if b.Get(SigRData) != 7 {
		t.Fatal("value not restored")
	}
}

func TestDirtyMaskedWriteNoChange(t *testing.T) {
	var b Bundle
	b.Set(SigBE, 0xF)
	b.TakeDirty()
	// 0x1F masks to 0xF — no stored change, no dirty bit.
	b.Set(SigBE, 0x1F)
	if b.Dirty() != 0 {
		t.Fatalf("masked-equal Set marked dirty (value %#x)", b.Get(SigBE))
	}
}

func TestMarkAllDirty(t *testing.T) {
	var b Bundle
	b.MarkAllDirty()
	want := uint32(1)<<uint(NumSignals) - 1
	if b.Dirty() != want {
		t.Fatalf("MarkAllDirty = %#x, want %#x", b.Dirty(), want)
	}
}

func TestMaskOfMatchesSignalTable(t *testing.T) {
	for id := SignalID(0); id < NumSignals; id++ {
		w := Signals[id].Bits
		var want uint64
		if w >= 64 {
			want = ^uint64(0)
		} else {
			want = uint64(1)<<uint(w) - 1
		}
		if MaskOf(id) != want {
			t.Errorf("MaskOf(%v) = %#x, want %#x", id, MaskOf(id), want)
		}
	}
}

func TestSnapshotIndependent(t *testing.T) {
	var b Bundle
	b.Set(SigA, 0xABC)
	s := b.Snapshot()
	b.Set(SigA, 0xDEF)
	if s[SigA] != 0xABC {
		t.Fatal("snapshot aliases live storage")
	}
}
