package ecbus

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestByteEnables(t *testing.T) {
	cases := []struct {
		addr uint64
		w    Width
		want uint8
		ok   bool
	}{
		{0x100, W8, 0b0001, true},
		{0x101, W8, 0b0010, true},
		{0x102, W8, 0b0100, true},
		{0x103, W8, 0b1000, true},
		{0x100, W16, 0b0011, true},
		{0x102, W16, 0b1100, true},
		{0x101, W16, 0, false},
		{0x103, W16, 0, false},
		{0x100, W32, 0b1111, true},
		{0x101, W32, 0, false},
		{0x102, W32, 0, false},
		{0x100, Width(3), 0, false},
	}
	for _, c := range cases {
		got, ok := ByteEnables(c.addr, c.w)
		if got != c.want || ok != c.ok {
			t.Errorf("ByteEnables(%#x, %v) = (%#b, %v), want (%#b, %v)",
				c.addr, c.w, got, ok, c.want, c.ok)
		}
	}
}

func TestByteEnablesPopcountMatchesWidth(t *testing.T) {
	f := func(addr uint64, sel uint8) bool {
		w := []Width{W8, W16, W32}[int(sel)%3]
		be, ok := ByteEnables(addr, w)
		if !ok {
			return true
		}
		n := 0
		for i := 0; i < 4; i++ {
			if be&(1<<i) != 0 {
				n++
			}
		}
		return n == int(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindHelpers(t *testing.T) {
	if !Fetch.IsRead() || !Read.IsRead() || Write.IsRead() {
		t.Fatal("IsRead wrong")
	}
	if CategoryOf(Fetch) != CatInstrRead || CategoryOf(Read) != CatDataRead || CategoryOf(Write) != CatWrite {
		t.Fatal("CategoryOf wrong")
	}
	for _, k := range []Kind{Fetch, Read, Write, Kind(9)} {
		if k.String() == "" {
			t.Fatal("empty Kind string")
		}
	}
	for _, c := range []Category{CatInstrRead, CatDataRead, CatWrite, Category(9)} {
		if c.String() == "" {
			t.Fatal("empty Category string")
		}
	}
}

func TestBusStateDone(t *testing.T) {
	if StateRequest.Done() || StateWait.Done() {
		t.Fatal("non-terminal state reported Done")
	}
	if !StateOK.Done() || !StateError.Done() {
		t.Fatal("terminal state not Done")
	}
	for _, s := range []BusState{StateRequest, StateWait, StateOK, StateError, BusState(7)} {
		if s.String() == "" {
			t.Fatal("empty BusState string")
		}
	}
}

func TestNewSingleValidation(t *testing.T) {
	if _, err := NewSingle(1, Read, 0x1000, W32, 0); err != nil {
		t.Fatalf("aligned W32: %v", err)
	}
	if _, err := NewSingle(1, Read, 0x1001, W32, 0); err == nil {
		t.Fatal("misaligned W32 accepted")
	}
	if _, err := NewSingle(1, Read, 0x1003, W16, 0); err == nil {
		t.Fatal("misaligned W16 accepted")
	}
	if _, err := NewSingle(1, Write, 0x1003, W8, 0xAB); err != nil {
		t.Fatalf("W8 at lane 3: %v", err)
	}
	if _, err := NewSingle(1, Read, 0x1000, Width(7), 0); err == nil {
		t.Fatal("bogus width accepted")
	}
}

func TestNewBurstValidation(t *testing.T) {
	tr, err := NewBurst(2, Read, 0x2000, nil)
	if err != nil {
		t.Fatalf("aligned burst: %v", err)
	}
	if len(tr.Data) != BurstLen || tr.Words() != BurstLen {
		t.Fatalf("burst data length %d, want %d", len(tr.Data), BurstLen)
	}
	if _, err := NewBurst(2, Read, 0x2004, nil); err == nil {
		t.Fatal("unaligned burst accepted")
	}
	if _, err := NewBurst(2, Write, 0x2000, []uint32{1, 2}); err == nil {
		t.Fatal("short burst payload accepted")
	}
}

func TestTransactionAddressMasked(t *testing.T) {
	tr, err := NewSingle(3, Read, 0xFFFF_FFFF_FFFF_FFF0, W32, 0)
	if err != nil {
		t.Fatalf("masked address rejected: %v", err)
	}
	if tr.Addr&^AddrMask != 0 {
		t.Fatalf("address %#x not masked to %d bits", tr.Addr, AddrBits)
	}
}

func TestTransactionCloneIndependent(t *testing.T) {
	tr, _ := NewBurst(4, Write, 0x100, []uint32{1, 2, 3, 4})
	c := tr.Clone()
	c.Data[0] = 99
	if tr.Data[0] != 1 {
		t.Fatal("Clone shares Data")
	}
	if !strings.Contains(tr.String(), "write") {
		t.Fatalf("String() = %q missing kind", tr.String())
	}
}

func TestValidatePayloadSize(t *testing.T) {
	tr := &Transaction{ID: 1, Kind: Read, Addr: 0x100, Width: W32, Data: []uint32{1, 2}}
	if err := tr.Validate(); err == nil {
		t.Fatal("two-word single transaction accepted")
	}
}

func TestResetSingleClearsResultStateAndReusesData(t *testing.T) {
	tr, _ := NewSingle(1, Write, 0x100, W32, 0xDEAD)
	// Simulate a completed run through a bus model.
	tr.Done, tr.Err = true, true
	tr.IssueCycle, tr.AddrCycle, tr.DataCycle = 5, 6, 9
	data := &tr.Data[0]
	if err := tr.ResetSingle(2, Read, 0x204, W16, 0); err != nil {
		t.Fatal(err)
	}
	if tr.Done || tr.Err || tr.IssueCycle != 0 || tr.AddrCycle != 0 || tr.DataCycle != 0 {
		t.Fatalf("result state not cleared: %+v", tr)
	}
	if tr.ID != 2 || tr.Kind != Read || tr.Addr != 0x204 || tr.Width != W16 || tr.Burst {
		t.Fatalf("identity fields wrong: %+v", tr)
	}
	if &tr.Data[0] != data {
		t.Fatal("ResetSingle reallocated the Data slice")
	}
	if err := tr.ResetSingle(3, Read, 0x205, W16, 0); err == nil {
		t.Fatal("misaligned reset accepted")
	}
}

func TestResetBurstResizesPooledData(t *testing.T) {
	tr, _ := NewSingle(1, Write, 0x100, W8, 0xAB)
	if err := tr.ResetBurst(2, Write, 0x200); err != nil {
		t.Fatal(err)
	}
	if !tr.Burst || len(tr.Data) != BurstLen || tr.Width != W32 {
		t.Fatalf("burst shape wrong: %+v", tr)
	}
	// Back to a single: the burst-capacity slice must be reused.
	data := &tr.Data[0]
	if err := tr.ResetSingle(3, Read, 0x104, W32, 0); err != nil {
		t.Fatal(err)
	}
	if len(tr.Data) != 1 || &tr.Data[0] != data {
		t.Fatalf("single reset did not reuse pooled slice (len %d)", len(tr.Data))
	}
	if err := tr.ResetBurst(4, Read, 0x204); err == nil {
		t.Fatal("unaligned burst reset accepted")
	}
}

func TestResetBurstClearsStalePayload(t *testing.T) {
	// A pooled transaction whose previous use was an errored burst read
	// still carries the earlier payload in the beats the error never
	// reached; reuse must not leak it.
	tr, _ := NewBurst(1, Read, 0x100, []uint32{0xAA, 0xBB, 0xCC, 0xDD})
	tr.Done, tr.Err = true, true
	if err := tr.ResetBurst(2, Read, 0x200); err != nil {
		t.Fatal(err)
	}
	for i, v := range tr.Data {
		if v != 0 {
			t.Fatalf("word %d carries stale payload %#x after ResetBurst", i, v)
		}
	}
}

func TestResetForRetry(t *testing.T) {
	// Errored read: corrupted beats must not survive into the retry.
	rd, _ := NewBurst(1, Read, 0x100, []uint32{0xDEAD, 0xBEEF, 0, 0})
	rd.Done, rd.Err = true, true
	rd.IssueCycle, rd.AddrCycle, rd.DataCycle = 3, 4, 9
	rd.ResetForRetry()
	if rd.Done || rd.Err {
		t.Fatalf("result state not cleared: %+v", rd)
	}
	if rd.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", rd.Retries)
	}
	if rd.IssueCycle != 0 || rd.AddrCycle != 0 || rd.DataCycle != 0 {
		t.Fatalf("cycle stamps not cleared: %+v", rd)
	}
	for i, v := range rd.Data {
		if v != 0 {
			t.Fatalf("read word %d kept corrupted beat %#x across retry", i, v)
		}
	}
	// Errored write: the retry must re-send the same payload.
	wr, _ := NewBurst(2, Write, 0x200, []uint32{1, 2, 3, 4})
	wr.Done, wr.Err = true, true
	wr.ResetForRetry()
	for i, v := range wr.Data {
		if v != uint32(i+1) {
			t.Fatalf("write word %d payload lost across retry: %#x", i, v)
		}
	}
	wr.ResetForRetry()
	if wr.Retries != 2 {
		t.Fatalf("Retries = %d, want 2 after second retry", wr.Retries)
	}
	// ResetSingle/ResetBurst start a fresh use: the retry count resets.
	if err := wr.ResetBurst(3, Write, 0x300); err != nil {
		t.Fatal(err)
	}
	if wr.Retries != 0 {
		t.Fatalf("Retries = %d after ResetBurst, want 0", wr.Retries)
	}
}
