package ecbus

import "testing"

// TakeDirty is a destructive read: each drain hands the accumulated
// mask to exactly one consumer and resets the accumulator, so a second
// drain with no intervening write is empty and writes after a drain
// accumulate from scratch. The table walks drain sequences step by
// step, checking the mask handed out at every drain.
func TestTakeDirtyDrainAfterDrain(t *testing.T) {
	bit := func(ids ...SignalID) uint32 {
		var m uint32
		for _, id := range ids {
			m |= 1 << uint(id)
		}
		return m
	}
	type step struct {
		apply func(b *Bundle) // mutation before the drain (nil = none)
		want  uint32          // mask this drain must return
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{
			name: "second drain empty",
			steps: []step{
				{apply: func(b *Bundle) { b.Set(SigA, 0x40) }, want: bit(SigA)},
				{want: 0},
				{want: 0},
			},
		},
		{
			name: "identical rewrite after drain stays clean",
			steps: []step{
				{apply: func(b *Bundle) { b.Set(SigWData, 7) }, want: bit(SigWData)},
				{apply: func(b *Bundle) { b.Set(SigWData, 7) }, want: 0},
			},
		},
		{
			name: "new value after drain re-marks only that signal",
			steps: []step{
				{apply: func(b *Bundle) { b.Set(SigA, 1); b.SetBool(SigAValid, true) }, want: bit(SigA, SigAValid)},
				{apply: func(b *Bundle) { b.Set(SigA, 2) }, want: bit(SigA)},
				{want: 0},
			},
		},
		{
			name: "writes between drains accumulate into one mask",
			steps: []step{
				{apply: func(b *Bundle) {
					b.Set(SigA, 0x10)
					b.SetBool(SigRdVal, true)
					b.Set(SigRData, 0xFF)
				}, want: bit(SigA, SigRdVal, SigRData)},
				{apply: func(b *Bundle) {
					b.SetBool(SigRdVal, false)
					b.SetBool(SigRdVal, true) // away and back: still dirty
				}, want: bit(SigRdVal)},
				{want: 0},
			},
		},
		{
			name: "mark-all drains full once then empty",
			steps: []step{
				{apply: func(b *Bundle) { b.MarkAllDirty() }, want: uint32(1)<<uint(NumSignals) - 1},
				{want: 0},
				{apply: func(b *Bundle) { b.SetBool(SigWBErr, true) }, want: bit(SigWBErr)},
				{want: 0},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b Bundle
			for i, s := range tc.steps {
				if s.apply != nil {
					s.apply(&b)
				}
				if got := b.TakeDirty(); got != s.want {
					t.Fatalf("drain %d: mask %#x, want %#x", i, got, s.want)
				}
				if b.Dirty() != 0 {
					t.Fatalf("drain %d left residue %#x", i, b.Dirty())
				}
			}
		})
	}
}
