// Package journal implements the card's transaction journal: a redo
// log in non-volatile memory that makes multi-word persistent updates
// atomic under power loss. A transaction's data travels as journal
// records, a commit marker seals the frame, and only then are the
// words written in place — so a tear at any point leaves either a
// frame without a valid marker (discarded on the next power-up) or a
// committed frame whose in-place writes the replay re-applies. This is
// the write-ordering discipline the smart-card literature calls
// tearing protection, and the checker's persistence rules enforce it.
//
// Two axes are pluggable, giving the four named strategies the sweep
// explores:
//
//   - granularity: word (one record per 32-bit word) or page (one
//     record per PageWords-word page image, the EEPROM page-programming
//     model — fewer, bigger programming operations);
//   - commit mode: eager (every write is its own durable frame —
//     minimal loss window, no transaction atomicity across a command)
//     or lazy (writes buffer in RAM and flush as one frame at Commit —
//     full atomicity, wider window of total loss).
//
// The journal performs all its I/O through the BusRW interface, so
// every record, marker and in-place write is a bus transaction the
// platform's energy models price — the journaling-energy overhead the
// EXPERIMENTS table measures is real simulated traffic, not bookkeeping.
package journal

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrPowerLost is the sentinel a bus implementation returns when the
// tear monitor latched during an access: the supply is gone and the
// run is over. It lives here — the lowest layer both the tear injector
// and the persistence clients share — so the card application, the
// exploration harness and the session runner can all errors.Is against
// one value without import cycles.
var ErrPowerLost = errors.New("power lost (card tear)")

// BusRW is the word-level bus access the journal performs its I/O
// through. Implementations drive a real (simulated) bus master, so
// journal traffic is metered like any other.
type BusRW interface {
	ReadWord(addr uint64) (uint32, error)
	WriteWord(addr uint64, data uint32) error
}

// Granularity selects the journal record unit.
type Granularity int

// Record granularities.
const (
	GranWord Granularity = iota // one record per 32-bit word
	GranPage                    // one record per PageWords-word page image
)

// CommitMode selects when a transaction's frame becomes durable.
type CommitMode int

// Commit modes.
const (
	CommitEager CommitMode = iota // every write flushes its own frame
	CommitLazy                    // writes buffer; Commit flushes one frame
)

// PageWords is the page size of the page-granularity strategies, in
// 32-bit words (16-byte pages, matching the burst alignment of the
// address maps).
const PageWords = 4

// Strategy is one point of the journaling design space. The zero
// Strategy (Empty) journals nothing: writes go straight in place,
// fully exposed to tearing.
type Strategy struct {
	Name   string
	Gran   Granularity
	Commit CommitMode
}

// Empty reports whether the strategy disables journaling.
func (s Strategy) Empty() bool { return s.Name == "" || s.Name == "none" }

// Names is the strategy vocabulary of the sweep's journal axis.
var Names = []string{"none", "word-eager", "word-lazy", "page-eager", "page-lazy"}

// Named resolves a strategy name ("" and "none" both mean no journal).
func Named(name string) (Strategy, bool) {
	switch name {
	case "", "none":
		return Strategy{}, true
	case "word-eager":
		return Strategy{Name: name, Gran: GranWord, Commit: CommitEager}, true
	case "word-lazy":
		return Strategy{Name: name, Gran: GranWord, Commit: CommitLazy}, true
	case "page-eager":
		return Strategy{Name: name, Gran: GranPage, Commit: CommitEager}, true
	case "page-lazy":
		return Strategy{Name: name, Gran: GranPage, Commit: CommitLazy}, true
	default:
		return Strategy{}, false
	}
}

// ParseNames validates a comma-separated strategy list, mirroring
// fault.ParseNames: trims whitespace, drops empty elements, and rejects
// an unknown name with the full vocabulary.
func ParseNames(csv string) ([]string, error) {
	var names []string
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := Named(name); !ok {
			return nil, fmt.Errorf("journal: unknown strategy %q (valid strategies: %s)",
				name, strings.Join(Names, ", "))
		}
		names = append(names, name)
	}
	return names, nil
}

// Region locates the journal inside the non-volatile memory: the
// journal area itself and the base of the data window whose words the
// records address (offsets are encoded relative to DataBase, so the
// frame format is position-independent).
type Region struct {
	DataBase    uint64 // base of the journaled data window
	JournalBase uint64 // first word of the journal area
	JournalSize uint64 // journal area size in bytes
}

// Frame format, one frame per committed transaction:
//
//	hdr    0x4A|seq|count   ('J', frame sequence, record count)
//	...    count records    (word: offset, data; page: page index, PageWords data words)
//	marker 0x43|seq|sum     ('C', same sequence, 16-bit checksum of hdr+records)
//
// A frame is valid iff its marker magic and sequence match and the
// checksum covers every preceding word — a tear inside the frame (or
// inside the marker's own programming window) fails the check and the
// replay discards the tail.
const (
	magicHdr    = 0x4A // 'J'
	magicMarker = 0x43 // 'C'
)

func hdrWord(seq uint32, count int) uint32 {
	return magicHdr<<24 | (seq&0xFF)<<16 | uint32(count)&0xFFFF
}

func markerWord(seq uint32, sum uint16) uint32 {
	return magicMarker<<24 | (seq&0xFF)<<16 | uint32(sum)
}

// checksum folds frame words into the 16-bit marker checksum.
func checksum(words []uint32) uint16 {
	var s uint32
	for _, w := range words {
		s += w >> 16
		s += w & 0xFFFF
	}
	return uint16(s&0xFFFF) + uint16(s>>16)
}

// EventKind tags a journal protocol event for the persistence checker.
type EventKind int

// Journal protocol events.
const (
	EvRecord      EventKind = iota // a journal record word was written
	EvMarker                       // a commit marker was written
	EvInPlace                      // an in-place data write of a committed frame
	EvReplayApply                  // replay re-applied a committed word
	EvReplayDone                   // replay finished; recovered data is safe to read
)

// Event is one observable step of the journal protocol. Seq is the
// frame sequence; Addr the bus address written (0 for EvReplayDone).
type Event struct {
	Kind EventKind
	Seq  uint32
	Addr uint64
}

// Entry is one journaled word update.
type Entry struct {
	Addr uint64
	Data uint32
}

// WriterStats counts the writer's bus traffic by purpose.
type WriterStats struct {
	Records       uint64 // journal record words written (incl. headers)
	Markers       uint64 // commit markers written
	Commits       uint64 // frames made durable
	InPlaceWrites uint64 // in-place data writes
	PageLoads     uint64 // data-window reads assembling page images
}

// Writer journals transactions under one strategy. Begin/Write/Commit
// delimit a transaction; under the eager commit mode every Write is
// its own durable frame and Commit is a no-op. Any error from the bus
// (including ErrPowerLost) aborts the operation immediately; the words
// already on the bus stay wherever the tear left them — exactly what
// the replay is for.
type Writer struct {
	s   Strategy
	reg Region
	bus BusRW

	// Obs, when set, observes every protocol step — the persistence
	// checker's feed.
	Obs func(Event)
	// OnCommit, when set, is invoked after a frame's marker is durable
	// (its entries are now guaranteed recoverable). Session runners use
	// it to track the committed prefix.
	OnCommit func(seq uint32)

	head      uint64
	seq       uint32
	pending   []Entry
	committed map[uint64]uint32

	Stats WriterStats
}

// NewWriter creates a journal writer over the bus. The strategy must
// not be Empty — callers branch to direct writes themselves.
func NewWriter(s Strategy, reg Region, bus BusRW) *Writer {
	return &Writer{s: s, reg: reg, bus: bus, head: reg.JournalBase, committed: map[uint64]uint32{}}
}

// Seq returns the sequence number of the last durable frame — the
// transaction count of the committed prefix.
func (w *Writer) Seq() uint32 { return w.seq }

// Committed returns the journaled words made durable so far (marker
// written), keyed by address. The map is live; copy before mutating.
func (w *Writer) Committed() map[uint64]uint32 { return w.committed }

// Begin opens a transaction (clears the lazy buffer).
func (w *Writer) Begin() { w.pending = w.pending[:0] }

// Write journals one word update. Eager mode flushes it as its own
// frame immediately; lazy mode buffers until Commit (a later Write to
// the same address within the transaction supersedes the earlier one).
func (w *Writer) Write(addr uint64, data uint32) error {
	if addr < w.reg.DataBase || addr >= w.reg.JournalBase {
		return fmt.Errorf("journal: write at %#x outside the data window [%#x, %#x)",
			addr, w.reg.DataBase, w.reg.JournalBase)
	}
	if w.s.Commit == CommitEager {
		return w.flush([]Entry{{Addr: addr, Data: data}})
	}
	for i := range w.pending {
		if w.pending[i].Addr == addr {
			w.pending[i].Data = data
			return nil
		}
	}
	w.pending = append(w.pending, Entry{Addr: addr, Data: data})
	return nil
}

// Commit makes the open transaction durable. Under the eager mode
// every write already flushed, so Commit is a no-op.
func (w *Writer) Commit() error {
	if w.s.Commit == CommitEager || len(w.pending) == 0 {
		return nil
	}
	err := w.flush(w.pending)
	w.pending = w.pending[:0]
	return err
}

// flush writes one frame — records, then marker, then in place — and
// reports the commit.
func (w *Writer) flush(entries []Entry) error {
	seq := w.seq + 1
	words, inPlace, err := w.encode(seq, entries)
	if err != nil {
		return err
	}
	need := uint64(4 * (len(words) + 1))
	if w.head+need > w.reg.JournalBase+w.reg.JournalSize {
		return fmt.Errorf("journal: area full (%d bytes needed at %#x)", need, w.head)
	}
	// Records first: the data must be recoverable before anything marks
	// it committed.
	for i, word := range words {
		addr := w.head + uint64(4*i)
		if err := w.bus.WriteWord(addr, word); err != nil {
			return err
		}
		w.Stats.Records++
		w.observe(Event{Kind: EvRecord, Seq: seq, Addr: addr})
	}
	// The marker seals the frame; once it is on the device the
	// transaction is durable.
	markerAddr := w.head + uint64(4*len(words))
	if err := w.bus.WriteWord(markerAddr, markerWord(seq, checksum(words))); err != nil {
		return err
	}
	w.Stats.Markers++
	w.Stats.Commits++
	w.observe(Event{Kind: EvMarker, Seq: seq, Addr: markerAddr})
	w.seq = seq
	w.head += need
	for _, e := range entries {
		w.committed[e.Addr] = e.Data
	}
	if w.OnCommit != nil {
		w.OnCommit(seq)
	}
	// In-place writes last: a tear here is recoverable by replay.
	for _, e := range inPlace {
		if err := w.bus.WriteWord(e.Addr, e.Data); err != nil {
			return err
		}
		w.Stats.InPlaceWrites++
		w.observe(Event{Kind: EvInPlace, Seq: seq, Addr: e.Addr})
	}
	return nil
}

// encode renders a frame's record words and the in-place write list
// for the strategy's granularity. Page granularity reads the untouched
// words of each dirty page off the bus to assemble full page images —
// the EEPROM page-programming model, where the whole page reprograms.
func (w *Writer) encode(seq uint32, entries []Entry) (words []uint32, inPlace []Entry, err error) {
	switch w.s.Gran {
	case GranWord:
		words = make([]uint32, 0, 1+2*len(entries))
		words = append(words, hdrWord(seq, len(entries)))
		for _, e := range entries {
			words = append(words, uint32((e.Addr-w.reg.DataBase)/4), e.Data)
		}
		return words, entries, nil
	case GranPage:
		pageBytes := uint64(4 * PageWords)
		images := map[uint64][]uint32{}
		var order []uint64
		for _, e := range entries {
			page := (e.Addr - w.reg.DataBase) / pageBytes
			img, ok := images[page]
			if !ok {
				img = make([]uint32, PageWords)
				base := w.reg.DataBase + page*pageBytes
				for i := range img {
					v, rerr := w.bus.ReadWord(base + uint64(4*i))
					if rerr != nil {
						return nil, nil, rerr
					}
					w.Stats.PageLoads++
					img[i] = v
				}
				images[page] = img
				order = append(order, page)
			}
			img[(e.Addr-w.reg.DataBase)%pageBytes/4] = e.Data
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		words = make([]uint32, 0, 1+(1+PageWords)*len(order))
		words = append(words, hdrWord(seq, len(order)))
		for _, page := range order {
			words = append(words, uint32(page))
			words = append(words, images[page]...)
			base := w.reg.DataBase + page*pageBytes
			for i, v := range images[page] {
				inPlace = append(inPlace, Entry{Addr: base + uint64(4*i), Data: v})
			}
		}
		return words, inPlace, nil
	default:
		return nil, nil, fmt.Errorf("journal: unknown granularity %d", w.s.Gran)
	}
}

func (w *Writer) observe(e Event) {
	if w.Obs != nil {
		w.Obs(e)
	}
}

// Recovery reports a power-up replay. BoundsJ holds the raw meter
// samples around the three phases — before scan, after scan, after
// apply, after finalize — so each phase figure is a single exact
// difference of two meter readings and adjacent phases share their
// boundary sample verbatim. That is the telescoping contract: no
// floating-point re-association is ever involved, BoundsJ[0] and
// BoundsJ[3] are bit-for-bit the meter readings around the whole
// replay, and the recovery total BoundsJ[3] - BoundsJ[0] is the exact
// meter delta.
type Recovery struct {
	Frames       int // valid frames found by the scan
	Applied      int // frames re-applied in place
	Discarded    int // torn tail frames discarded (0 or 1)
	WordsApplied int // data words rewritten by the replay

	BoundsJ   [4]float64 // meter samples: start, after scan, after apply, after finalize
	ScanJ     float64    // BoundsJ[1] - BoundsJ[0]
	ApplyJ    float64    // BoundsJ[2] - BoundsJ[1]
	FinalizeJ float64    // BoundsJ[3] - BoundsJ[2]
}

// frame is a scanned, validated journal frame.
type frame struct {
	seq     uint32
	hdrAddr uint64
	entries []Entry
}

// Replay is the power-up half of the journal protocol: scan the
// journal area for frames, validate each frame's commit marker,
// re-apply every committed frame's words in place, discard the torn
// tail (a frame whose marker never made it), and finally erase the
// frame headers so the journal is empty for the next session. energy,
// when non-nil, samples the platform's running energy meter; obs, when
// non-nil, observes the replay's protocol events (the checker feed —
// EvReplayDone marks the point after which torn words are safe to
// read).
func Replay(s Strategy, reg Region, bus BusRW, energy func() float64, obs func(Event)) (Recovery, error) {
	var rec Recovery
	sample := func(i int) {
		if energy != nil {
			rec.BoundsJ[i] = energy()
		}
	}
	emit := func(e Event) {
		if obs != nil {
			obs(e)
		}
	}
	sample(0)

	// Phase 1 — scan: walk the journal area frame by frame. The first
	// word that is not a valid header ends the scan; a header whose
	// marker fails validation is the torn tail and is discarded.
	var frames []frame
	addr, end := reg.JournalBase, reg.JournalBase+reg.JournalSize
	for addr+4 <= end {
		hdr, err := bus.ReadWord(addr)
		if err != nil {
			return rec, err
		}
		if hdr>>24 != magicHdr {
			break
		}
		seq, count := hdr>>16&0xFF, int(hdr&0xFFFF)
		var perEntry int
		switch s.Gran {
		case GranPage:
			perEntry = 1 + PageWords
		default:
			perEntry = 2
		}
		nwords := 1 + count*perEntry
		markerAddr := addr + uint64(4*nwords)
		if markerAddr+4 > end {
			rec.Discarded++
			break
		}
		words := make([]uint32, nwords)
		words[0] = hdr
		for i := 1; i < nwords; i++ {
			if words[i], err = bus.ReadWord(addr + uint64(4*i)); err != nil {
				return rec, err
			}
		}
		marker, err := bus.ReadWord(markerAddr)
		if err != nil {
			return rec, err
		}
		if marker != markerWord(seq, checksum(words)) {
			rec.Discarded++
			break
		}
		f := frame{seq: seq, hdrAddr: addr}
		for i := 0; i < count; i++ {
			e := words[1+i*perEntry:]
			if s.Gran == GranPage {
				base := reg.DataBase + uint64(e[0])*uint64(4*PageWords)
				for j := 0; j < PageWords; j++ {
					f.entries = append(f.entries, Entry{Addr: base + uint64(4*j), Data: e[1+j]})
				}
			} else {
				f.entries = append(f.entries, Entry{Addr: reg.DataBase + uint64(e[0])*4, Data: e[1]})
			}
		}
		frames = append(frames, f)
		addr = markerAddr + 4
	}
	rec.Frames = len(frames)
	sample(1)

	// Phase 2 — apply: re-write every committed frame's words in place.
	// Idempotent, so a tear during replay just replays again next time.
	for _, f := range frames {
		for _, e := range f.entries {
			if err := bus.WriteWord(e.Addr, e.Data); err != nil {
				return rec, err
			}
			rec.WordsApplied++
			emit(Event{Kind: EvReplayApply, Seq: f.seq, Addr: e.Addr})
		}
		rec.Applied++
	}
	sample(2)

	// Phase 3 — finalize: erase the frame headers (and the torn tail's)
	// so the next scan finds an empty journal.
	for _, f := range frames {
		if err := bus.WriteWord(f.hdrAddr, 0); err != nil {
			return rec, err
		}
	}
	if rec.Discarded > 0 {
		if err := bus.WriteWord(addr, 0); err != nil {
			return rec, err
		}
	}
	sample(3)
	rec.ScanJ = rec.BoundsJ[1] - rec.BoundsJ[0]
	rec.ApplyJ = rec.BoundsJ[2] - rec.BoundsJ[1]
	rec.FinalizeJ = rec.BoundsJ[3] - rec.BoundsJ[2]
	emit(Event{Kind: EvReplayDone})
	return rec, nil
}
