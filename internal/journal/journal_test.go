package journal

import (
	"errors"
	"strings"
	"testing"
)

// memBus is an in-memory BusRW for protocol tests; Fail, when set,
// makes the Nth write (1-based) return ErrPowerLost, modelling a tear
// landing on that bus operation.
type memBus struct {
	words  map[uint64]uint32
	writes int
	Fail   int
}

func newMemBus() *memBus { return &memBus{words: map[uint64]uint32{}} }

func (b *memBus) ReadWord(addr uint64) (uint32, error) { return b.words[addr], nil }

func (b *memBus) WriteWord(addr uint64, data uint32) error {
	b.writes++
	if b.Fail != 0 && b.writes >= b.Fail {
		return ErrPowerLost
	}
	b.words[addr] = data
	return nil
}

var testRegion = Region{DataBase: 0x1000, JournalBase: 0x1200, JournalSize: 0x600}

func TestNamedVocabulary(t *testing.T) {
	for _, name := range Names {
		s, ok := Named(name)
		if !ok {
			t.Fatalf("Named(%q) not ok", name)
		}
		if name == "none" && !s.Empty() {
			t.Fatal("none must be Empty")
		}
		if name != "none" && s.Empty() {
			t.Fatalf("%q must not be Empty", name)
		}
	}
	if _, ok := Named("belt-and-braces"); ok {
		t.Fatal("unknown strategy resolved")
	}
}

func TestParseNames(t *testing.T) {
	got, err := ParseNames(" word-eager , ,page-lazy ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "word-eager" || got[1] != "page-lazy" {
		t.Fatalf("got %v", got)
	}
	_, err = ParseNames("word-eager,bogus")
	if err == nil || !strings.Contains(err.Error(), "bogus") || !strings.Contains(err.Error(), "page-lazy") {
		t.Fatalf("want unknown-name error with full vocabulary, got %v", err)
	}
}

// eventSeq extracts the kind sequence for order assertions.
func eventSeq(events []Event) []EventKind {
	kinds := make([]EventKind, len(events))
	for i, e := range events {
		kinds[i] = e.Kind
	}
	return kinds
}

func TestWordEagerOrdering(t *testing.T) {
	bus := newMemBus()
	s, _ := Named("word-eager")
	w := NewWriter(s, testRegion, bus)
	var events []Event
	w.Obs = func(e Event) { events = append(events, e) }

	w.Begin()
	if err := w.Write(0x1004, 0xAA); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	// Eager: the single Write is already a full frame.
	want := []EventKind{EvRecord, EvRecord, EvRecord, EvMarker, EvInPlace}
	got := eventSeq(events)
	if len(got) != len(want) {
		t.Fatalf("events %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if bus.words[0x1004] != 0xAA {
		t.Fatalf("in-place word = %#x", bus.words[0x1004])
	}
	if w.Seq() != 1 || w.Stats.Commits != 1 {
		t.Fatalf("seq=%d commits=%d", w.Seq(), w.Stats.Commits)
	}
	if w.Committed()[0x1004] != 0xAA {
		t.Fatal("committed map missing the write")
	}
}

func TestWordLazyBuffersUntilCommit(t *testing.T) {
	bus := newMemBus()
	s, _ := Named("word-lazy")
	w := NewWriter(s, testRegion, bus)

	w.Begin()
	if err := w.Write(0x1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(0x1008, 2); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(0x1000, 3); err != nil { // supersedes the first
		t.Fatal(err)
	}
	if bus.writes != 0 {
		t.Fatalf("lazy writes hit the bus before Commit: %d", bus.writes)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if w.Stats.Commits != 1 || w.Stats.Markers != 1 {
		t.Fatalf("stats %+v", w.Stats)
	}
	if bus.words[0x1000] != 3 || bus.words[0x1008] != 2 {
		t.Fatalf("in-place words %#x %#x", bus.words[0x1000], bus.words[0x1008])
	}
	// 2 entries → hdr + 2*(off,data) = 5 record words + marker.
	if w.Stats.Records != 5 {
		t.Fatalf("records = %d, want 5", w.Stats.Records)
	}
}

func TestPageGranularityAssemblesImages(t *testing.T) {
	bus := newMemBus()
	bus.words[0x1010] = 0x11 // untouched neighbour in the dirty page
	s, _ := Named("page-lazy")
	w := NewWriter(s, testRegion, bus)

	w.Begin()
	if err := w.Write(0x1014, 0x22); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if w.Stats.PageLoads != PageWords {
		t.Fatalf("page loads = %d, want %d", w.Stats.PageLoads, PageWords)
	}
	// hdr + (index + PageWords data) = 6 record words for one page.
	if w.Stats.Records != uint64(2+PageWords) {
		t.Fatalf("records = %d", w.Stats.Records)
	}
	if bus.words[0x1010] != 0x11 || bus.words[0x1014] != 0x22 {
		t.Fatal("page rewrite lost the untouched neighbour")
	}
	// The page in-place rewrite covers all PageWords words.
	if w.Stats.InPlaceWrites != PageWords {
		t.Fatalf("in-place writes = %d, want %d", w.Stats.InPlaceWrites, PageWords)
	}
}

func TestWriteOutsideDataWindow(t *testing.T) {
	s, _ := Named("word-eager")
	w := NewWriter(s, testRegion, newMemBus())
	if err := w.Write(testRegion.JournalBase, 1); err == nil {
		t.Fatal("write into the journal area must fail")
	}
	if err := w.Write(testRegion.DataBase-4, 1); err == nil {
		t.Fatal("write below the data window must fail")
	}
}

func TestPowerLossBeforeMarkerIsNotCommitted(t *testing.T) {
	bus := newMemBus()
	s, _ := Named("word-lazy")
	w := NewWriter(s, testRegion, bus)
	w.Begin()
	_ = w.Write(0x1000, 0xBEEF)
	bus.Fail = 2 // tear on the second record word, before the marker
	err := w.Commit()
	if !errors.Is(err, ErrPowerLost) {
		t.Fatalf("err = %v", err)
	}
	if w.Seq() != 0 || w.Stats.Commits != 0 {
		t.Fatal("torn frame must not count as committed")
	}
	if len(w.Committed()) != 0 {
		t.Fatal("torn frame leaked into the committed map")
	}
}

// meterBus wraps memBus with a fake energy meter: each write costs 3
// units, each read 1, so the replay's phase-energy accounting has
// something real to telescope over.
type meterBus struct {
	*memBus
	energy float64
}

func (b *meterBus) ReadWord(addr uint64) (uint32, error) {
	b.energy += 1
	return b.memBus.ReadWord(addr)
}

func (b *meterBus) WriteWord(addr uint64, data uint32) error {
	b.energy += 3
	return b.memBus.WriteWord(addr, data)
}

func TestReplayRestoresCommittedDiscardssTorn(t *testing.T) {
	for _, name := range []string{"word-eager", "word-lazy", "page-eager", "page-lazy"} {
		t.Run(name, func(t *testing.T) {
			bus := newMemBus()
			s, _ := Named(name)
			w := NewWriter(s, testRegion, bus)

			w.Begin()
			_ = w.Write(0x1000, 0x11)
			_ = w.Write(0x1004, 0x22)
			if err := w.Commit(); err != nil {
				t.Fatal(err)
			}
			w.Begin()
			_ = w.Write(0x1010, 0x33)
			if err := w.Commit(); err != nil {
				t.Fatal(err)
			}
			committed := map[uint64]uint32{}
			for a, v := range w.Committed() {
				committed[a] = v
			}

			// Third transaction tears before its marker: make every write
			// from here on fail, then hand-corrupt nothing — the frame
			// simply has records but no valid marker.
			w.Begin()
			bus.Fail = bus.writes + 2
			err := w.Write(0x1020, 0x44) // eager: the Write itself flushes
			if err == nil {
				err = w.Commit()
			}
			if !errors.Is(err, ErrPowerLost) {
				t.Fatalf("expected power loss, got %v", err)
			}
			bus.Fail = 0

			// Simulate the power cycle: in-place data may be stale, the
			// journal survives. Clobber the in-place copies of the
			// committed words to prove replay restores them.
			bus.words[0x1000] = 0xDEAD
			bus.words[0x1010] = 0xDEAD

			var done bool
			rec, err := Replay(s, testRegion, bus, nil, func(e Event) {
				if e.Kind == EvReplayDone {
					done = true
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			// Eager mode turns each of the 3 committed writes into its own
			// frame; lazy groups them into 2 transactions.
			wantFrames := 2
			if s.Commit == CommitEager {
				wantFrames = 3
			}
			if rec.Frames != wantFrames || rec.Applied != wantFrames || rec.Discarded != 1 {
				t.Fatalf("recovery %+v, want %d frames", rec, wantFrames)
			}
			if !done {
				t.Fatal("EvReplayDone not emitted")
			}
			for a, v := range committed {
				if bus.words[a] != v {
					t.Fatalf("replay lost %#x: got %#x want %#x", a, bus.words[a], v)
				}
			}
			if bus.words[0x1020] == 0x44 {
				t.Fatal("uncommitted write survived replay")
			}

			// The journal is empty after finalize: a second replay finds
			// nothing.
			rec2, err := Replay(s, testRegion, bus, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			if rec2.Frames != 0 || rec2.WordsApplied != 0 {
				t.Fatalf("second replay found work: %+v", rec2)
			}
		})
	}
}

func TestReplayPhaseEnergyTelescopes(t *testing.T) {
	bus := &meterBus{memBus: newMemBus()}
	s, _ := Named("word-lazy")
	w := NewWriter(s, testRegion, bus)
	w.Begin()
	_ = w.Write(0x1000, 7)
	_ = w.Write(0x1004, 8)
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}

	rec, err := Replay(s, testRegion, bus, func() float64 { return bus.energy }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ScanJ <= 0 || rec.ApplyJ <= 0 || rec.FinalizeJ <= 0 {
		t.Fatalf("phases must each cost energy: %+v", rec)
	}
	// Bit-exact telescoping: the phase figures are differences of the
	// same meter samples, so their sum reproduces the total exactly.
	if rec.ScanJ+rec.ApplyJ+rec.FinalizeJ != rec.BoundsJ[3]-rec.BoundsJ[0] {
		t.Fatalf("phase energies do not telescope: %+v", rec)
	}
}

func TestJournalAreaFull(t *testing.T) {
	small := Region{DataBase: 0x1000, JournalBase: 0x1200, JournalSize: 16}
	s, _ := Named("word-eager")
	w := NewWriter(s, small, newMemBus())
	if err := w.Write(0x1000, 1); err != nil { // 3 records + marker = 16 bytes
		t.Fatal(err)
	}
	if err := w.Write(0x1004, 2); err == nil || !strings.Contains(err.Error(), "full") {
		t.Fatalf("want area-full error, got %v", err)
	}
}
