package bench

import (
	"fmt"
	"sync"

	"repro/internal/calib"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tlm3"
)

// Corpus-side analytic screening: the layer-3 counting bus drives the
// same transaction scripts the estimation service serves, and a
// calibrated linear model maps the counted features onto each exact
// layer's energy and cycle figures. This is the bench-layout twin of
// the explorer's workload-side calibration — it exists to quantify the
// analytic fast path's error band against TL2, TL1 and the gate-level
// reference on corpus traffic, where the property suite can sweep
// hundreds of random corpora cheaply.

// ScreenLayers lists the exact layers the corpus screening model is
// calibrated against: the gate-level reference and both timed TL
// layers.
var ScreenLayers = []int{0, 1, 2}

// screenTrainSeeds / screenTrainLen size the calibration set: enough
// corpora that the 10-feature regression is well overdetermined, with
// seeds far away from the property suite's evaluation range so the
// reported band is held-out, not in-sample.
const (
	screenTrainSeeds = 24
	screenTrainBase  = 10_001
	screenTrainLen   = 120
)

// CountCorpus counts one corpus script's traffic features with the
// layer-3 counting bus over the reference two-slave layout. The second
// return is the counting bus's protocol-minimum cycle tally.
func CountCorpus(items []core.Item) (tlm3.Features, uint64, error) {
	k := sim.New(0)
	c := tlm3.NewCounter(newMap())
	m := core.NewScriptMaster(k, c, items)
	k.RunUntil(10_000_000, m.Done)
	if !m.Done() {
		return tlm3.Features{}, 0, fmt.Errorf("bench: corpus counting run did not complete")
	}
	return c.Features(), c.Cycles(), nil
}

// corpusFeatureNames extends the counting-bus vocabulary with the
// script's issue schedule: corpus items carry NotBefore release times,
// and the cycle count of a timed run tracks the later of "bus busy"
// and "still waiting for scheduled work" — information pure traffic
// counting cannot see. The span feature restores it to the regression.
func corpusFeatureNames() []string { return append(tlm3.FeatureNames(), "issue_span") }

// corpusVector counts items and appends the schedule span.
func corpusVector(items []core.Item) ([]float64, error) {
	var span uint64
	for i := range items {
		if items[i].NotBefore > span {
			span = items[i].NotBefore
		}
	}
	fv, _, err := CountCorpus(items)
	if err != nil {
		return nil, err
	}
	return append(fv.Vector(), float64(span)), nil
}

var (
	screenOnce sync.Once
	screenVal  calib.Model
	screenErr  error
)

// ScreenModel returns the memoized corpus screening model: per-layer
// coefficient sets fitted on screenTrainSeeds random corpora measured
// exactly at every ScreenLayers level. The first caller pays the
// calibration (a few dozen short runs); everyone after shares the fit.
func ScreenModel() (*calib.Model, error) {
	screenOnce.Do(func() { screenVal, screenErr = fitScreenModel() })
	if screenErr != nil {
		return nil, screenErr
	}
	return &screenVal, nil
}

func fitScreenModel() (calib.Model, error) {
	char := sharedCharTable()
	var samples []calib.Sample
	for i := 0; i < screenTrainSeeds; i++ {
		seed := uint64(screenTrainBase + i)
		items := core.RandomCorpus(seed, screenTrainLen, lay)
		x, err := corpusVector(core.CloneItems(items))
		if err != nil {
			return calib.Model{}, fmt.Errorf("bench: screen calibration seed %d: %w", seed, err)
		}
		for _, layer := range ScreenLayers {
			cycles, energyJ := runLayer(layer, core.CloneItems(items), true, char)
			samples = append(samples, calib.Sample{
				Layer:   layer,
				Key:     fmt.Sprintf("corpus-%d", seed),
				X:       x,
				EnergyJ: energyJ,
				Cycles:  float64(cycles),
			})
		}
	}
	m, err := calib.Fit(corpusFeatureNames(), samples)
	if err != nil {
		return calib.Model{}, fmt.Errorf("bench: screen calibration fit: %w", err)
	}
	return m, nil
}

// ScreenCorpus predicts the energy and cycle figures a corpus script
// would produce at the given exact layer, from one counting run plus
// the calibrated model — the analytic fast path for corpus traffic.
func ScreenCorpus(layer int, items []core.Item) (energyJ, cycles float64, err error) {
	m, err := ScreenModel()
	if err != nil {
		return 0, 0, err
	}
	x, err := corpusVector(items)
	if err != nil {
		return 0, 0, err
	}
	return m.Predict(layer, "", x)
}
