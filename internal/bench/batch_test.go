package bench

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gatepower"
)

// estimatesEqual asserts bit-identity between two estimates.
func estimatesEqual(t *testing.T, ctx string, got, want CorpusEstimate) {
	t.Helper()
	if got.Cycles != want.Cycles || got.Errors != want.Errors || got.Retries != want.Retries {
		t.Fatalf("%s: got %+v, want %+v", ctx, got, want)
	}
	if math.Float64bits(got.EnergyJ) != math.Float64bits(want.EnergyJ) {
		t.Fatalf("%s: energy bits %016x != %016x", ctx,
			math.Float64bits(got.EnergyJ), math.Float64bits(want.EnergyJ))
	}
}

// TestGoldenRunCorpusEstimateMatchesReference pins the routed
// RunCorpusEstimate (batched engine at width 1) against both the direct
// kernel harness and the reference-mode run, bit for bit, for every
// corpus, batched layer and named fault plan.
func TestGoldenRunCorpusEstimateMatchesReference(t *testing.T) {
	plans := append([]string{""}, fault.Names...)
	for _, corpus := range Corpora {
		for layer := 0; layer <= 1; layer++ {
			for _, name := range plans {
				var plan fault.Plan
				if name != "" {
					var ok bool
					plan, ok = fault.Named(name)
					if !ok {
						t.Fatalf("unknown plan %q", name)
					}
				}
				got, err := RunCorpusEstimate(layer, corpus, 64, plan)
				if err != nil {
					t.Fatalf("routed estimate: %v", err)
				}

				items, err := CorpusItems(corpus, 64)
				if err != nil {
					t.Fatal(err)
				}
				var char gatepower.CharTable
				if layer > 0 {
					char = sharedCharTable()
				}
				row, err := runLayerFault(layer, items, char, plan)
				if err != nil {
					t.Fatalf("kernel harness: %v", err)
				}
				want := CorpusEstimate{Layer: layer, Cycles: row.Cycles, EnergyJ: row.energyJ,
					Errors: row.Errors, Retries: row.Retries}
				ctx := corpus + "/" + name
				estimatesEqual(t, "routed vs kernel "+ctx, got, want)

				core.SetReference(true)
				ref, err := RunCorpusEstimate(layer, corpus, 64, plan)
				core.SetReference(false)
				if err != nil {
					t.Fatalf("reference estimate: %v", err)
				}
				estimatesEqual(t, "routed vs reference "+ctx, got, ref)
			}
		}
	}
}

// TestGoldenCampaignBatchedMatchesSerial pins the batched campaign
// against the serial campaign across lane widths, per run and bit for
// bit — the width-invariance the /v1/batch cache key relies on.
func TestGoldenCampaignBatchedMatchesSerial(t *testing.T) {
	const seed, runs, n = 42, 12, 48
	plans := []fault.Plan{{}, mustPlan(t, "grind")}
	for layer := 0; layer <= 1; layer++ {
		for pi, plan := range plans {
			serial, err := CampaignEstimateSerial(layer, seed, runs, n, plan)
			if err != nil {
				t.Fatalf("serial campaign: %v", err)
			}
			for _, width := range []int{1, 5, 12, 64} {
				batched, err := CampaignEstimate(layer, seed, runs, n, plan, width)
				if err != nil {
					t.Fatalf("batched campaign width %d: %v", width, err)
				}
				if len(batched) != len(serial) {
					t.Fatalf("width %d: %d results, want %d", width, len(batched), len(serial))
				}
				for i := range serial {
					estimatesEqual(t, "campaign run", batched[i], serial[i])
				}
				if !CampaignEqual(serial, batched) {
					t.Fatalf("layer %d plan %d width %d: CampaignEqual disagrees with per-run check",
						layer, pi, width)
				}
			}
		}
	}
}

func mustPlan(t *testing.T, name string) fault.Plan {
	t.Helper()
	plan, ok := fault.Named(name)
	if !ok {
		t.Fatalf("unknown plan %q", name)
	}
	return plan
}

// TestGoldenNVMCampaignBatchedMatchesSerial pins the NVM-organization
// campaign — the wait-state-dominated workload of the batched
// before/after table, where lanes sleep through long programming waits —
// against its serial reference, clean and under faults, per run and bit
// for bit.
func TestGoldenNVMCampaignBatchedMatchesSerial(t *testing.T) {
	const seed, runs, n = 42, 8, 64
	plans := []fault.Plan{{}, mustPlan(t, "grind")}
	for layer := 0; layer <= 1; layer++ {
		for pi, plan := range plans {
			corpus := CampaignRuns(seed, runs, n)
			serial, err := CampaignEstimateSerialRunsOrg(layer, CloneRuns(corpus), plan, OrgNVM)
			if err != nil {
				t.Fatalf("serial NVM campaign: %v", err)
			}
			for _, width := range []int{1, 3, 8, 64} {
				batched, err := CampaignEstimateRunsOrg(layer, CloneRuns(corpus), plan, width, OrgNVM)
				if err != nil {
					t.Fatalf("batched NVM campaign width %d: %v", width, err)
				}
				if !CampaignEqual(serial, batched) {
					t.Fatalf("layer %d plan %d width %d: NVM campaign diverged from serial",
						layer, pi, width)
				}
			}
		}
	}
}
