package bench

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gatepower"
)

// The serving layer's view of the bench runners: a named transaction
// corpus driven into one abstraction level under a fault plan, with the
// energy figure returned as raw joules. The run is fully deterministic
// — same corpus, layer and plan always produce the same IEEE-754 bit
// pattern — which is what makes content-addressed result caching sound.

// Corpora names the transaction corpora an estimation request may ask
// for: the EC verification corpus and the parameterized back-to-back
// Table-3 performance corpus.
var Corpora = []string{"verification", "perf"}

// DefaultPerfN is the perf-corpus transaction count used when a
// request leaves it unset — the fault-table and metrics-report size.
const DefaultPerfN = 256

// CorpusItems builds the named corpus over the reference two-slave
// layout. n sizes the perf corpus (<= 0 selects DefaultPerfN) and is
// ignored for the fixed verification corpus.
func CorpusItems(name string, n int) ([]core.Item, error) {
	switch name {
	case "verification":
		return core.VerificationCorpus(lay), nil
	case "perf":
		if n <= 0 {
			n = DefaultPerfN
		}
		return core.PerfCorpus(lay, n), nil
	default:
		return nil, fmt.Errorf("bench: unknown corpus %q (valid corpora: %s)",
			name, strings.Join(Corpora, ", "))
	}
}

// CorpusEstimate is the outcome of one corpus × layer × fault-plan
// run. EnergyJ carries the estimator's raw joule total; consumers that
// cache or compare results must do so on its bit pattern.
type CorpusEstimate struct {
	Layer   int
	Cycles  uint64
	EnergyJ float64
	Errors  int
	Retries int
}

// sharedCharTable memoizes the characterization run: the table is a
// pure function of the reference layout, so concurrent estimation
// requests share one copy instead of re-simulating 400 transactions
// per request.
var (
	charOnce   sync.Once
	charCached gatepower.CharTable
)

func sharedCharTable() gatepower.CharTable {
	charOnce.Do(func() { charCached = CharTable() })
	return charCached
}

// RunCorpusEstimate drives the named corpus into a fresh bus of the
// given layer (0 = gate level, 1 = TL1, 2 = TL2) under the fault plan
// with the bench retry policy. It is safe to call concurrently: every
// run builds a private kernel, bus and injector.
func RunCorpusEstimate(layer int, corpus string, n int, plan fault.Plan) (CorpusEstimate, error) {
	if layer < 0 || layer > 2 {
		return CorpusEstimate{}, fmt.Errorf("bench: unsupported layer %d (valid layers: 0, 1, 2)", layer)
	}
	items, err := CorpusItems(corpus, n)
	if err != nil {
		return CorpusEstimate{}, err
	}
	if layer <= 1 && !core.Reference() {
		// Layers 0 and 1 run through the batched engine at width 1 —
		// bit-identical to the kernel path by the golden gate, and the
		// single code path the batched campaigns scale up from. The
		// reference toggle forces the original kernel-driven run.
		eng, err := batch.New(batchConfig(layer, 1, plan))
		if err != nil {
			return CorpusEstimate{}, err
		}
		res, err := eng.EstimateAll([]batch.Run{{Items: items}})
		if err != nil {
			return CorpusEstimate{}, err
		}
		r := res[0]
		return CorpusEstimate{
			Layer:   layer,
			Cycles:  r.Cycles,
			EnergyJ: r.EnergyJ,
			Errors:  r.Errors,
			Retries: r.Retries,
		}, nil
	}
	var char gatepower.CharTable
	if layer > 0 {
		char = sharedCharTable()
	}
	row, err := runLayerFault(layer, items, char, plan)
	if err != nil {
		return CorpusEstimate{}, err
	}
	return CorpusEstimate{
		Layer:   layer,
		Cycles:  row.Cycles,
		EnergyJ: row.energyJ,
		Errors:  row.Errors,
		Retries: row.Retries,
	}, nil
}
