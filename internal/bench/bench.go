// Package bench regenerates the paper's evaluation artifacts — Table 1
// (timing error), Table 2 (energy estimation error), Table 3 (simulation
// performance), Figure 6 (layer-2 energy sampling) and the §4.3 case
// study exploration — as formatted text tables, from live simulations.
// cmd/ecbench prints them; the repository-root benchmarks measure the
// Table-3 throughput under `go test -bench`.
package bench

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/gatepower"
	"repro/internal/javacard"
	"repro/internal/mem"
	"repro/internal/rtlbus"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
)

// lay is the reference two-slave layout of the accuracy experiments.
var lay = core.Layout{Fast: 0, Slow: 0x10000}

func newMap() *ecbus.Map {
	return ecbus.MustMap(
		mem.NewRAM("fast", lay.Fast, 0x1000, 0, 0),
		mem.NewRAM("slow", lay.Slow, 0x1000, 1, 2),
	)
}

// runLayer drives items into a fresh bus of the given layer; returns
// cycles and the energy estimate (0 if energy off).
func runLayer(layer int, items []core.Item, energy bool, char gatepower.CharTable) (uint64, float64) {
	k := sim.New(0)
	var bus core.Initiator
	var get func() float64 = func() float64 { return 0 }
	switch layer {
	case 0:
		b := rtlbus.New(k, newMap())
		if energy {
			est := gatepower.NewEstimator(gatepower.DefaultConfig())
			k.AtObserver(sim.Post, "gp", func(uint64) { est.Observe(b.Wires()) }, est.ObserveIdle)
			get = est.TotalEnergy
		}
		bus = b
	case 1:
		b := tlm1.New(k, newMap())
		if energy {
			b.AttachPower(tlm1.NewPowerModel(char))
			get = b.Power().TotalEnergy
		}
		bus = b
	default:
		b := tlm2.New(k, newMap())
		if energy {
			b.AttachPower(tlm2.NewPowerModel(char))
			get = b.Power().TotalEnergy
		}
		bus = b
	}
	m, n := core.RunScript(k, bus, items, 10_000_000)
	if !m.Done() {
		panic("bench: run did not complete")
	}
	return n, get()
}

// CharTable characterizes once over the reference layout (paper §3.3).
func CharTable() gatepower.CharTable {
	k := sim.New(0)
	b := rtlbus.New(k, newMap())
	est := gatepower.NewEstimator(gatepower.DefaultConfig())
	k.AtObserver(sim.Post, "gp", func(uint64) { est.Observe(b.Wires()) }, est.ObserveIdle)
	m, _ := core.RunScript(k, b, core.CharCorpus(lay, 400), 10_000_000)
	if !m.Done() {
		panic("bench: characterization did not complete")
	}
	return est.Char()
}

// Table1Row is one abstraction level's timing result.
type Table1Row struct {
	Level    string
	Cycles   uint64
	RelPct   float64 // cycles relative to gate level, percent
	ErrorPct float64
}

// Table1 reproduces "Timing error between the gate-level simulation,
// transaction level layer one bus model and the transaction level layer
// two model" on the EC verification corpus.
func Table1() ([]Table1Row, string) {
	items := core.VerificationCorpus(lay)
	c0, _ := runLayer(0, core.CloneItems(items), false, gatepower.CharTable{})
	c1, _ := runLayer(1, core.CloneItems(items), false, gatepower.CharTable{})
	c2, _ := runLayer(2, core.CloneItems(items), false, gatepower.CharTable{})

	rows := []Table1Row{
		{Level: "Gate-level model", Cycles: c0, RelPct: 100, ErrorPct: 0},
		{Level: "Layer one model", Cycles: c1, RelPct: 100 * float64(c1) / float64(c0), ErrorPct: 100 * (float64(c1)/float64(c0) - 1)},
		{Level: "Layer two model", Cycles: c2, RelPct: 100 * float64(c2) / float64(c0), ErrorPct: 100 * (float64(c2)/float64(c0) - 1)},
	}
	var sb strings.Builder
	sb.WriteString("Table 1: timing error vs gate-level reference (verification corpus)\n")
	fmt.Fprintf(&sb, "  %-20s %10s %10s %9s   (paper: gate 100%%, L1 100%%, L2 100.5%%)\n",
		"Abstraction Level", "Cycles", "Rel", "Error")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-20s %10d %9.2f%% %+8.2f%%\n", r.Level, r.Cycles, r.RelPct, r.ErrorPct)
	}
	return rows, sb.String()
}

// Table2Row is one abstraction level's energy result.
type Table2Row struct {
	Level    string
	EnergyPJ float64
	RelPct   float64
	ErrorPct float64
}

// Table2 reproduces "Energy estimation error of the transaction level
// models compared to the gate-level energy estimation".
func Table2() ([]Table2Row, string) {
	char := CharTable()
	items := core.VerificationCorpus(lay)
	_, e0 := runLayer(0, core.CloneItems(items), true, char)
	_, e1 := runLayer(1, core.CloneItems(items), true, char)
	_, e2 := runLayer(2, core.CloneItems(items), true, char)

	row := func(name string, e float64) Table2Row {
		return Table2Row{Level: name, EnergyPJ: e * 1e12, RelPct: 100 * e / e0, ErrorPct: 100 * (e/e0 - 1)}
	}
	rows := []Table2Row{
		row("Gate-level estimation", e0),
		row("TL layer 1 estimation", e1),
		row("TL layer 2 estimation", e2),
	}
	var sb strings.Builder
	sb.WriteString("Table 2: energy estimation error vs gate-level reference\n")
	fmt.Fprintf(&sb, "  %-24s %12s %10s %9s   (paper: 100 / 92.1 / 114.7)\n",
		"Abstraction Level", "Energy[pJ]", "Rel", "Error")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-24s %12.2f %9.1f%% %+8.1f%%\n", r.Level, r.EnergyPJ, r.RelPct, r.ErrorPct)
	}
	return rows, sb.String()
}

// Table3Row is one configuration's simulation-performance result.
type Table3Row struct {
	Model      string
	WithEnergy bool
	KTps       float64 // thousand transactions per wall-clock second
	Factor     float64 // vs layer 1 with energy
}

// Table3 reproduces "Simulation performance in executed bus transactions
// per second for the transaction level models with and without energy
// estimation" over the all-combinations workload, plus the layer-0
// reference row. n sets the transactions per measurement run.
func Table3(n int) ([]Table3Row, string) {
	char := CharTable()
	measure := func(layer int, energy bool) float64 {
		// Best of three runs: wall-clock throughput is noisy at
		// millisecond scales and the paper reports peak simulator rates.
		best := 0.0
		for rep := 0; rep < 3; rep++ {
			items := core.PerfCorpus(lay, n)
			start := time.Now()
			runLayer(layer, items, energy, char)
			el := time.Since(start).Seconds()
			if r := float64(n) / el / 1e3; r > best {
				best = r
			}
		}
		return best
	}
	// Warm up once to stabilize allocator effects.
	measure(1, true)

	rows := []Table3Row{
		{Model: "TL Layer 1", WithEnergy: true, KTps: measure(1, true)},
		{Model: "TL Layer 1", WithEnergy: false, KTps: measure(1, false)},
		{Model: "TL Layer 2", WithEnergy: true, KTps: measure(2, true)},
		{Model: "TL Layer 2", WithEnergy: false, KTps: measure(2, false)},
		{Model: "Layer 0 (signal)", WithEnergy: true, KTps: measure(0, true)},
		{Model: "Layer 0 (signal)", WithEnergy: false, KTps: measure(0, false)},
	}
	base := rows[0].KTps
	for i := range rows {
		rows[i].Factor = rows[i].KTps / base
	}
	var sb strings.Builder
	sb.WriteString("Table 3: simulation performance (kTransactions/s), all single/burst R/W combinations\n")
	fmt.Fprintf(&sb, "  %-18s %-10s %10s %8s   (paper: L1 85.3/94.6, L2 129.6/145.8 kT/s; factors 1/1.1/1.52/1.7)\n",
		"Model", "Energy", "kT/s", "Factor")
	for _, r := range rows {
		en := "with"
		if !r.WithEnergy {
			en = "without"
		}
		fmt.Fprintf(&sb, "  %-18s %-10s %10.1f %8.2f\n", r.Model, en, r.KTps, r.Factor)
	}
	return rows, sb.String()
}

// Figure6 reproduces the layer-2 energy sampling behaviour: with three
// requests in flight (read, write, read to the slow slave), a sample
// taken mid-stream contains only the phases finished so far.
func Figure6() string {
	char := CharTable()
	k := sim.New(0)
	b := tlm2.New(k, newMap()).AttachPower(tlm2.NewPowerModel(char))

	mk := func(id uint64, kind ecbus.Kind, addr uint64) core.Item {
		tr, err := ecbus.NewSingle(id, kind, addr, ecbus.W32, uint32(id)*0x1111)
		if err != nil {
			panic(err)
		}
		return core.Item{Tr: tr}
	}
	items := []core.Item{
		mk(1, ecbus.Read, lay.Slow),
		mk(2, ecbus.Write, lay.Slow+4),
		mk(3, ecbus.Read, lay.Slow+8),
	}
	m := core.NewScriptMaster(k, b, items)

	var sb strings.Builder
	sb.WriteString("Figure 6: layer-2 energy sampling (slow slave: AW=1, DW=2)\n")
	sb.WriteString("  sample       addrPhases dataPhases EnergySince[pJ]\n")
	lastA, lastD := uint64(0), uint64(0)
	sample := func(name string) {
		a, d := b.Power().Phases()
		e := b.Power().EnergySince()
		fmt.Fprintf(&sb, "  %-12s +%d         +%d         %10.2f\n", name, a-lastA, d-lastD, e*1e12)
		lastA, lastD = a, d
	}
	// t1 after cycle 3: address phases of requests 1 and 2 finished, no
	// data phase yet — the paper's "energy at t1 contains the address
	// phases of request one and two".
	for cyc := 0; cyc <= 3; cyc++ {
		k.Step()
	}
	sample("t1 (cyc 3)")
	// t2 after cycle 6: address phase of request 3 plus the data phases
	// of the first two requests; the data phase of request 3 is still in
	// progress and "is not included".
	for cyc := 4; cyc <= 6; cyc++ {
		k.Step()
	}
	sample("t2 (cyc 6)")
	k.RunUntil(100, m.Done)
	sample("end")
	sb.WriteString("  Energy appears only when a phase finishes; a data phase still in\n")
	sb.WriteString("  progress at the sampling instant is not included (paper Fig. 6).\n")
	return sb.String()
}

// newFaultMap is newMap with every slave wrapped in a fresh injector
// applying plan.
func newFaultMap(plan fault.Plan) *ecbus.Map {
	return ecbus.MustMap(
		fault.Wrap(mem.NewRAM("fast", lay.Fast, 0x1000, 0, 0), plan),
		fault.Wrap(mem.NewRAM("slow", lay.Slow, 0x1000, 1, 2), plan),
	)
}

// FaultRetry is the master retry policy used by the fault table runs.
var FaultRetry = core.RetryPolicy{MaxRetries: 8, Backoff: 1}

// FaultRow is one abstraction level's result under a fault plan.
type FaultRow struct {
	Level       string
	Cycles      uint64
	DCyclesPct  float64 // vs the same layer's clean run
	EnergyPJ    float64
	DEnergyPct  float64
	Errors      int // transactions errored after exhausting retries
	Retries     int // total re-issues
	CheckerMsgs int // protocol violations flagged (layer 0 only)

	// energyJ is the estimator's raw joule total, before the pJ scaling
	// of the rendered table — the figure the serving layer caches and
	// compares bit for bit.
	energyJ float64
}

// runLayerFault drives the corpus into a fresh bus of the given layer
// under a fault plan with the FaultRetry master policy.
func runLayerFault(layer int, items []core.Item, char gatepower.CharTable, plan fault.Plan) (FaultRow, error) {
	return runLayerFaultMap(layer, items, char, newFaultMap(plan))
}

// runLayerFaultMap is runLayerFault over an explicit address map — the
// campaign organizations build their own fault-wrapped maps.
func runLayerFaultMap(layer int, items []core.Item, char gatepower.CharTable, bmap *ecbus.Map) (FaultRow, error) {
	k := sim.New(0)
	var bus core.Initiator
	get := func() float64 { return 0 }
	switch layer {
	case 0:
		b := rtlbus.New(k, bmap)
		est := gatepower.NewEstimator(gatepower.DefaultConfig())
		k.AtObserver(sim.Post, "gp", func(uint64) { est.Observe(b.Wires()) }, est.ObserveIdle)
		get = est.TotalEnergy
		bus = b
	case 1:
		b := tlm1.New(k, bmap).AttachPower(tlm1.NewPowerModel(char))
		get = b.Power().TotalEnergy
		bus = b
	default:
		b := tlm2.New(k, bmap).AttachPower(tlm2.NewPowerModel(char))
		get = b.Power().TotalEnergy
		bus = b
	}
	m := core.NewScriptMaster(k, bus, items)
	m.Retry = FaultRetry
	n, _ := k.RunUntil(10_000_000, m.Done)
	if !m.Done() {
		return FaultRow{}, fmt.Errorf("bench: layer-%d fault run did not complete", layer)
	}
	e := get()
	return FaultRow{
		Cycles: n, EnergyPJ: e * 1e12, energyJ: e,
		Errors: m.Errors(), Retries: m.TotalRetries(),
	}, nil
}

// FaultTable runs the back-to-back Table-3 workload (256 transactions)
// under a named fault plan at every abstraction level and reports the
// timing/energy deltas against each layer's own clean run — the
// robustness companion to Tables 1/2. The pipelined perf corpus is used
// instead of the sparse verification corpus so wait-state storms and
// retries show up in the cycle count rather than being absorbed by
// issue gaps.
func FaultTable(planName string) ([]FaultRow, string, error) {
	plan, ok := fault.Named(planName)
	if !ok {
		return nil, "", fmt.Errorf("bench: unknown fault plan %q (have %v)", planName, fault.Names)
	}
	char := CharTable()
	items := func() []core.Item { return core.PerfCorpus(lay, 256) }
	names := []string{"Gate-level model", "Layer one model", "Layer two model"}
	rows := make([]FaultRow, 0, 3)
	for layer := 0; layer <= 2; layer++ {
		clean, err := runLayerFault(layer, items(), char, fault.Plan{})
		if err != nil {
			return nil, "", err
		}
		r, err := runLayerFault(layer, items(), char, plan)
		if err != nil {
			return nil, "", err
		}
		r.Level = names[layer]
		r.DCyclesPct = 100 * (float64(r.Cycles)/float64(clean.Cycles) - 1)
		r.DEnergyPct = 100 * (r.EnergyPJ/clean.EnergyPJ - 1)
		rows = append(rows, r)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fault table: 256-transaction perf corpus under plan %q (retry %d, backoff %d)\n",
		planName, FaultRetry.MaxRetries, FaultRetry.Backoff)
	fmt.Fprintf(&sb, "  %-20s %10s %9s %12s %9s %7s %8s\n",
		"Abstraction Level", "Cycles", "ΔCyc", "Energy[pJ]", "ΔEnergy", "errors", "retries")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-20s %10d %+8.2f%% %12.2f %+8.2f%% %7d %8d\n",
			r.Level, r.Cycles, r.DCyclesPct, r.EnergyPJ, r.DEnergyPct, r.Errors, r.Retries)
	}
	return rows, sb.String(), nil
}

// Exploration reproduces the §4.3 case-study table over the full sweep
// with default sweep options (one worker per CPU).
func Exploration() (string, error) {
	return ExplorationWith(explore.SweepOpts{})
}

// ExplorationWith is Exploration with caller-tuned sweep options, so
// cmd/ecbench can set the worker count and stream rows as they land.
func ExplorationWith(opts explore.SweepOpts) (string, error) {
	return ExplorationLayers(opts, []int{1, 2})
}

// ExplorationLayers is ExplorationWith over a caller-chosen layer list
// (explore.SweepLayers vocabulary, validated by the sweep).
func ExplorationLayers(opts explore.SweepOpts, layers []int) (string, error) {
	results, err := explore.SweepWith(opts, layers, javacard.Organizations, explore.AddrMaps, javacard.Workloads())
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Case study (paper 4.3): Java Card VM HW/SW interface exploration\n")
	sb.WriteString(explore.Table(results))
	sb.WriteString("\nPareto frontier (cycles vs bus energy, per workload):\n")
	sb.WriteString(explore.Table(explore.Pareto(results)))
	return sb.String(), nil
}
