package bench

import (
	"math"
	"testing"

	"repro/internal/core"
)

// screenSuiteSeeds is the held-out evaluation range of the corpus
// screening property suite — disjoint from the training seeds.
func screenSuiteSeeds(t *testing.T) []uint64 {
	n := 100
	if testing.Short() {
		n = 12
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(i + 1)
	}
	return seeds
}

// TestScreenModelErrorBand quantifies the analytic corpus model's
// held-out error against the exact TL2, TL1 and gate-level estimates
// across the random-corpus property suite, and pins a ceiling on it so
// a regression in the counting bus or the fit shows up as a failure,
// not a silent accuracy loss.
func TestScreenModelErrorBand(t *testing.T) {
	char := sharedCharTable()
	seeds := screenSuiteSeeds(t)

	// Ceilings per layer. Energy screens tightly at every layer because
	// it is a sum of per-phase costs — invariant under transaction
	// overlap, exactly what event counting measures. Wall-clock cycles
	// of a pipelined script run are NOT additive (address phases hide
	// under in-flight data phases, and how much hides depends on the
	// interleaving), so the cycle band is structurally wide on corpus
	// traffic; the ceiling pins the measured band against regressions
	// rather than promising precision counting cannot deliver.
	ceilE := map[int]float64{0: 0.12, 1: 0.12, 2: 0.12}
	ceilC := map[int]float64{0: 0.35, 1: 0.35, 2: 0.35}

	maxE := map[int]float64{}
	maxC := map[int]float64{}
	for _, seed := range seeds {
		items := core.RandomCorpus(seed, 120, lay)
		for _, layer := range ScreenLayers {
			cycles, energyJ := runLayer(layer, core.CloneItems(items), true, char)
			predE, predC, err := ScreenCorpus(layer, core.CloneItems(items))
			if err != nil {
				t.Fatalf("seed %d layer %d: %v", seed, layer, err)
			}
			relE := math.Abs(predE-energyJ) / energyJ
			relC := math.Abs(predC-float64(cycles)) / float64(cycles)
			maxE[layer] = math.Max(maxE[layer], relE)
			maxC[layer] = math.Max(maxC[layer], relC)
		}
	}
	for _, layer := range ScreenLayers {
		t.Logf("layer %d: held-out max rel error  energy %.4f  cycles %.4f  (%d corpora)",
			layer, maxE[layer], maxC[layer], len(seeds))
		if maxE[layer] > ceilE[layer] {
			t.Errorf("layer %d: energy error %.4f exceeds ceiling %.2f", layer, maxE[layer], ceilE[layer])
		}
		if maxC[layer] > ceilC[layer] {
			t.Errorf("layer %d: cycle error %.4f exceeds ceiling %.2f", layer, maxC[layer], ceilC[layer])
		}
	}

	// The fitted (in-sample) band itself must be finite and recorded:
	// the experiment appendix quotes it.
	m, err := ScreenModel()
	if err != nil {
		t.Fatal(err)
	}
	for _, layer := range ScreenLayers {
		eMax, cMax, ok := m.Band(layer)
		if !ok {
			t.Fatalf("screen model has no band for layer %d", layer)
		}
		t.Logf("layer %d: calibrated in-sample band  energy %.4f  cycles %.4f", layer, eMax, cMax)
	}
}

// TestCountCorpusDeterministic: counting the same corpus twice yields
// identical features — the property that makes screening cacheable.
func TestCountCorpusDeterministic(t *testing.T) {
	items := core.RandomCorpus(42, 120, lay)
	a, ca, err := CountCorpus(core.CloneItems(items))
	if err != nil {
		t.Fatal(err)
	}
	b, cb, err := CountCorpus(core.CloneItems(items))
	if err != nil {
		t.Fatal(err)
	}
	if a != b || ca != cb {
		t.Errorf("counting is not deterministic: %+v/%d vs %+v/%d", a, ca, b, cb)
	}
	if a.ReadBeats == 0 || a.WriteBeats == 0 || a.AddrPhases == 0 {
		t.Errorf("corpus features implausibly empty: %+v", a)
	}
}
