package bench

import (
	"strings"
	"testing"
)

func TestTable1ReproducesPaperShape(t *testing.T) {
	rows, text := Table1()
	if rows[1].ErrorPct != 0 {
		t.Errorf("layer-1 timing error %.3f%%, paper reports 0%%", rows[1].ErrorPct)
	}
	if rows[2].ErrorPct <= 0 || rows[2].ErrorPct > 1.5 {
		t.Errorf("layer-2 timing error %.3f%% outside (0, 1.5]%% (paper: +0.5%%)", rows[2].ErrorPct)
	}
	if !strings.Contains(text, "Table 1") {
		t.Error("missing caption")
	}
	t.Log("\n" + text)
}

func TestTable2ReproducesPaperShape(t *testing.T) {
	rows, text := Table2()
	l1, l2 := rows[1], rows[2]
	if l1.ErrorPct >= 0 || l1.ErrorPct < -15 {
		t.Errorf("layer-1 energy error %+.1f%% not in [-15, 0) (paper: -7.8%%)", l1.ErrorPct)
	}
	if l2.ErrorPct <= 0 || l2.ErrorPct > 25 {
		t.Errorf("layer-2 energy error %+.1f%% not in (0, 25] (paper: +14.7%%)", l2.ErrorPct)
	}
	t.Log("\n" + text)
}

func TestTable3ReproducesPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	rows, text := Table3(150000)
	get := func(model string, energy bool) float64 {
		for _, r := range rows {
			if r.Model == model && r.WithEnergy == energy {
				return r.KTps
			}
		}
		t.Fatalf("row %s/%v missing", model, energy)
		return 0
	}
	l1e, l1 := get("TL Layer 1", true), get("TL Layer 1", false)
	l2e := get("TL Layer 2", true)
	rtlE, rtl := get("Layer 0 (signal)", true), get("Layer 0 (signal)", false)
	// Paper shape, restricted to the relations this implementation
	// reproduces robustly (see EXPERIMENTS.md): energy estimation costs
	// throughput, most of all at gate level; the layer-2 energy model
	// (per finished phase) simulates faster than the layer-1 one (per
	// cycle) — the paper's 1.52x factor between the estimating models.
	if l1e > l1*1.05 {
		t.Errorf("L1 with energy (%.0f) faster than without (%.0f)", l1e, l1)
	}
	// Cross-model wall-clock comparisons fluctuate by tens of percent on
	// shared machines; they are reported (here and in EXPERIMENTS.md)
	// rather than asserted. The expected shapes on quiet hardware:
	// L2+energy ~1.1-1.4x L1+energy (paper: 1.52x), gate-level
	// estimation the slowest configuration.
	t.Logf("L2+energy / L1+energy throughput factor: %.2f (paper: 1.52)", l2e/l1e)
	t.Logf("gate-level estimation: %.0f kT/s vs %.0f kT/s without", rtlE, rtl)
	t.Log("\n" + text)
}

func TestFigure6Text(t *testing.T) {
	text := Figure6()
	for _, want := range []string{"Figure 6", "addrPh", "phase finishes"} {
		if !strings.Contains(text, want) {
			t.Fatalf("figure text missing %q:\n%s", want, text)
		}
	}
	t.Log("\n" + text)
}

func TestExplorationTable(t *testing.T) {
	text, err := Exploration()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Case study", "Pareto", "wallet", "arith-loop", "stack-churn"} {
		if !strings.Contains(text, want) {
			t.Fatalf("exploration missing %q", want)
		}
	}
	t.Log("\n" + text)
}

func TestCharTableDeterministic(t *testing.T) {
	if CharTable() != CharTable() {
		t.Fatal("characterization not deterministic")
	}
}
