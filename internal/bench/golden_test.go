package bench

import (
	"testing"

	"repro/internal/core"
)

// The reported artifacts (Table 1, Table 2, Figure 6) must be
// byte-identical between the reference and the optimized per-cycle hot
// path: the performance work must not change any published number.
// Table 3 is wall-clock throughput and is inherently non-deterministic,
// so it is exercised (not compared) elsewhere.

func captureArtifacts() (t1, t2, f6 string) {
	_, t1 = Table1()
	_, t2 = Table2()
	f6 = Figure6()
	return
}

func TestReportedArtifactsModeInvariant(t *testing.T) {
	core.SetReference(true)
	rt1, rt2, rf6 := captureArtifacts()
	core.SetReference(false)
	ot1, ot2, of6 := captureArtifacts()

	if rt1 != ot1 {
		t.Errorf("Table 1 differs between modes:\nreference:\n%s\noptimized:\n%s", rt1, ot1)
	}
	if rt2 != ot2 {
		t.Errorf("Table 2 differs between modes:\nreference:\n%s\noptimized:\n%s", rt2, ot2)
	}
	if rf6 != of6 {
		t.Errorf("Figure 6 differs between modes:\nreference:\n%s\noptimized:\n%s", rf6, of6)
	}
}
