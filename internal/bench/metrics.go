package bench

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/fault"
	"repro/internal/gatepower"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/rtlbus"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
)

// layerName renders the registry layer label for a bus model level.
func layerName(layer int) string { return fmt.Sprintf("L%d", layer) }

// runLayerMetered is runLayerFault with the observability layer
// attached everywhere it plugs in: the bus, the energy meter, the fault
// injectors, the script master and the kernel. It returns the run's
// final metrics snapshot.
func runLayerMetered(layer int, items []core.Item, char gatepower.CharTable, plan fault.Plan) (metrics.Snapshot, error) {
	reg := metrics.New(layerName(layer))
	reg.SetMaster("script-master")

	k := sim.New(0)
	k.SetRunObserver(reg)
	bmap := ecbus.MustMap(
		fault.Wrap(mem.NewRAM("fast", lay.Fast, 0x1000, 0, 0), plan).AttachMetrics(reg),
		fault.Wrap(mem.NewRAM("slow", lay.Slow, 0x1000, 1, 2), plan).AttachMetrics(reg),
	)
	var bus core.Initiator
	get := func() float64 { return 0 }
	switch layer {
	case 0:
		b := rtlbus.New(k, bmap)
		est := gatepower.NewEstimator(gatepower.DefaultConfig())
		k.AtObserver(sim.Post, "gp", func(uint64) { est.Observe(b.Wires()) }, est.ObserveIdle)
		b.AttachMetrics(k, reg, est.TotalEnergy) // after the estimator's observer
		get = est.TotalEnergy
		bus = b
	case 1:
		b := tlm1.New(k, bmap).AttachPower(tlm1.NewPowerModel(char)).AttachMetrics(reg)
		get = b.Power().TotalEnergy
		bus = b
	default:
		b := tlm2.New(k, bmap).AttachPower(tlm2.NewPowerModel(char)).AttachMetrics(reg)
		get = b.Power().TotalEnergy
		bus = b
	}
	m := core.NewScriptMaster(k, bus, items)
	m.Retry = FaultRetry
	m.Metrics = reg
	k.RunUntil(10_000_000, m.Done)
	if !m.Done() {
		return metrics.Snapshot{}, fmt.Errorf("bench: layer-%d metered run did not complete", layer)
	}
	reg.Finalize(get())
	return reg.Snapshot(), nil
}

// MetricsReport renders the observability breakdown of the 256-transaction
// perf corpus at every abstraction level, followed — when planName is an
// active plan — by each layer's clean-vs-fault metrics diff.
func MetricsReport(planName string) (string, error) {
	plan, ok := fault.Named(planName)
	if !ok {
		return "", fmt.Errorf("bench: unknown fault plan %q (have %v)", planName, fault.Names)
	}
	char := CharTable()
	items := func() []core.Item { return core.PerfCorpus(lay, 256) }

	var sb strings.Builder
	sb.WriteString("Metrics report: 256-transaction perf corpus\n\n")
	clean := make([]metrics.Snapshot, 3)
	for layer := 0; layer <= 2; layer++ {
		s, err := runLayerMetered(layer, items(), char, fault.Plan{})
		if err != nil {
			return "", err
		}
		clean[layer] = s
		sb.WriteString(s.Table())
		sb.WriteString("\n")
	}
	if !plan.Empty() {
		for layer := 0; layer <= 2; layer++ {
			s, err := runLayerMetered(layer, items(), char, plan)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&sb, "%s clean vs %q:\n", layerName(layer), planName)
			sb.WriteString(metrics.Diff(clean[layer], s))
			sb.WriteString("\n")
		}
	}
	return sb.String(), nil
}
