package bench

import (
	"strings"
	"testing"

	"repro/internal/platform"
)

func TestTearGrid(t *testing.T) {
	rows, err := TearGrid(platform.Layer1,
		[]string{"none", "tear-early", "tear-mid"},
		[]string{"none", "word-eager", "page-lazy"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9", len(rows))
	}
	for _, r := range rows {
		if r.Plan == "none" {
			if r.Torn || r.RecoveryJ != 0 {
				t.Fatalf("untorn cell torn: %+v", r)
			}
			continue
		}
		// tear-mid cuts at program op 8; the unjournaled session programs
		// only 7 words, so that cell legitimately completes untorn.
		if !r.Torn {
			if r.Plan == "tear-mid" && r.Strategy == "none" {
				continue
			}
			t.Fatalf("%s/%s did not tear", r.Plan, r.Strategy)
		}
		if r.Strategy != "none" && r.RecoveryJ <= 0 {
			t.Fatalf("journaled torn cell has free recovery: %+v", r)
		}
		if r.Strategy == "none" && (r.Commits != 0 || r.Frames != 0) {
			t.Fatalf("unjournaled cell journaled: %+v", r)
		}
	}
}

func TestTearGridRejectsUnknownNames(t *testing.T) {
	if _, err := TearGrid(platform.Layer1, []string{"tear-sideways"}, []string{"none"}); err == nil {
		t.Fatal("unknown plan accepted")
	}
	if _, err := TearGrid(platform.Layer1, []string{"none"}, []string{"word-sometimes"}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestTearTableRenders(t *testing.T) {
	tbl, err := TearTable(platform.Layer1, []string{"none", "tear-early"}, []string{"none", "word-eager"})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Strategy", "word-eager", "tear-early", "recovery[pJ]"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("table misses %q:\n%s", want, tbl)
		}
	}
}
