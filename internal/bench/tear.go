package bench

import (
	"fmt"
	"strings"

	"repro/internal/journal"
	"repro/internal/platform"
	"repro/internal/tear"
)

// TearRow is one cell of the journaling-strategy × tear-plan grid: a
// complete APDU session torn by the plan and recovered under the
// strategy, with the energy split between the live session and the
// power-up replay.
type TearRow struct {
	Plan      string
	Strategy  string
	Torn      bool
	Commands  int     // terminal commands fully answered before the cut
	Commits   int     // journal frames durable at the cut
	Frames    int     // frames the replay found valid
	Discarded int     // torn tail frames discarded
	SessionJ  float64 // energy up to the cut
	RecoveryJ float64 // power-up replay energy (exact meter delta)
	TotalJ    float64
	Cycles    uint64
}

// TearGrid runs the tear-aware session workload for every strategy ×
// plan pair at the given layer. A torn cell's committed prefix is
// verified against the device inside tear.RunSession — a row coming
// back at all means no committed word was lost.
func TearGrid(layer platform.Layer, planNames, strategyNames []string) ([]TearRow, error) {
	var rows []TearRow
	for _, sn := range strategyNames {
		strat, ok := journal.Named(sn)
		if !ok {
			return nil, fmt.Errorf("bench: unknown journal strategy %q (have %v)", sn, journal.Names)
		}
		for _, pn := range planNames {
			plan, ok := tear.Named(pn)
			if !ok {
				return nil, fmt.Errorf("bench: unknown tear plan %q (have %v)", pn, tear.Names)
			}
			res, err := tear.RunSession(layer, plan, strat)
			if err != nil {
				return nil, fmt.Errorf("bench: %s/%s: %w", pn, sn, err)
			}
			rows = append(rows, TearRow{
				Plan:      pn,
				Strategy:  sn,
				Torn:      res.Torn,
				Commands:  len(res.Responses),
				Commits:   len(res.CommitLog),
				Frames:    res.Recovery.Frames,
				Discarded: res.Recovery.Discarded,
				SessionJ:  res.SessionJ,
				RecoveryJ: res.RecoveryJ,
				TotalJ:    res.TotalJ,
				Cycles:    res.Cycles,
			})
		}
	}
	return rows, nil
}

// TearTable renders the grid — the EXPERIMENTS.md journaling ×
// tear-budget table.
func TearTable(layer platform.Layer, planNames, strategyNames []string) (string, error) {
	if len(planNames) == 0 {
		planNames = []string{"none", "tear-early", "tear-mid", "tear-late"}
	}
	if len(strategyNames) == 0 {
		strategyNames = journal.Names
	}
	rows, err := TearGrid(layer, planNames, strategyNames)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Card-tear sessions: journaling strategy x tear plan, %v\n", layer)
	fmt.Fprintf(&sb, "%-11s %-11s %5s %5s %8s %7s %5s %13s %13s %12s\n",
		"Strategy", "Plan", "torn", "cmds", "commits", "frames", "disc", "session[pJ]", "recovery[pJ]", "cycles")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-11s %-11s %5v %5d %8d %7d %5d %13.1f %13.1f %12d\n",
			r.Strategy, r.Plan, r.Torn, r.Commands, r.Commits, r.Frames, r.Discarded,
			r.SessionJ*1e12, r.RecoveryJ*1e12, r.Cycles)
	}
	return sb.String(), nil
}
