package bench

// Batched whole-corpus estimation: campaign construction, the batched
// and serial campaign runners, and the ecbench before/after table. A
// campaign is R independent pseudo-random corpus runs over the
// reference layout — the workload shape of the serving layer, where
// many users' stimuli are estimated against one card organization.

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/fault"
	"repro/internal/gatepower"
	"repro/internal/logic"
	"repro/internal/mem"
)

// Organization selects a campaign's card memory organization — the
// paper's Fig.-1 platform admits several data-memory technologies for
// the same bus, and the estimation service prices stimuli against a
// user-selected one.
type Organization int

const (
	// OrgSRAM is the Table-3 reference map: both regions RAM-class.
	OrgSRAM Organization = iota
	// OrgNVM keeps the fast region RAM-class and gives the slow region
	// NVM-class timing: EEPROM-style address/read waits plus a static
	// per-word programming wait on writes (mem.NewNVRAM). Conservative
	// against real parts — EEPROM programming runs thousands of bus
	// cycles (mem.EEPROM models 32 per word at bus scale) — it is the
	// wait-state-dominated workload smart-card estimation spends most
	// wall-clock on.
	OrgNVM
)

// NVMWriteWait is the per-word programming wait of the NVM
// organization's data memory.
const NVMWriteWait = 256

// newOrgFaultMap builds the fault-wrapped address map of an
// organization; OrgSRAM is exactly the serial harness's newFaultMap.
func newOrgFaultMap(org Organization, plan fault.Plan) *ecbus.Map {
	if org == OrgNVM {
		return ecbus.MustMap(
			fault.Wrap(mem.NewRAM("fast", lay.Fast, 0x1000, 0, 0), plan),
			fault.Wrap(mem.NewNVRAM("nvm", lay.Slow, 0x1000, 1, 2, NVMWriteWait), plan),
		)
	}
	return newFaultMap(plan)
}

// batchConfig assembles the engine configuration matching the serial
// fault harness (runLayerFault): same fault-wrapped maps, same retry
// policy, same energy models — the premise of the golden gate.
func batchConfig(layer, width int, plan fault.Plan) batch.Config {
	return orgBatchConfig(layer, width, plan, OrgSRAM)
}

func orgBatchConfig(layer, width int, plan fault.Plan, org Organization) batch.Config {
	cfg := batch.Config{
		Layer:  layer,
		Width:  width,
		NewMap: func() *ecbus.Map { return newOrgFaultMap(org, plan) },
		Retry:  FaultRetry,
	}
	if layer == 0 {
		cfg.Gate = gatepower.DefaultConfig()
	} else {
		cfg.Char = sharedCharTable()
	}
	return cfg
}

// CampaignRuns builds the deterministic campaign corpus: runs
// independent random stimuli of n transactions each, with per-run seeds
// derived from the campaign seed by mixing so the streams are
// uncorrelated but fully reproducible.
func CampaignRuns(seed uint64, runs, n int) []batch.Run {
	out := make([]batch.Run, runs)
	for i := range out {
		out[i] = batch.Run{Items: core.RandomCorpus(logic.Mix64(seed+uint64(i)), n, lay)}
	}
	return out
}

// CloneRuns deep-copies a campaign corpus. Estimation consumes its
// stimuli (result fields are written into the transactions), so timing
// harnesses clone a pristine corpus per pass instead of regenerating.
func CloneRuns(runs []batch.Run) []batch.Run {
	out := make([]batch.Run, len(runs))
	for i, r := range runs {
		out[i] = batch.Run{Items: core.CloneItems(r.Items)}
	}
	return out
}

// CampaignEstimateRuns pushes a pre-built campaign corpus through the
// batched engine at the given lane width — the estimation step proper,
// with corpus construction factored out so timing harnesses measure the
// engine, not the stimulus generator. Per-run results are independent
// of the width (the engine's golden gate), so any width returns the
// same bits.
func CampaignEstimateRuns(layer int, runs []batch.Run, plan fault.Plan, width int) ([]CorpusEstimate, error) {
	return CampaignEstimateRunsOrg(layer, runs, plan, width, OrgSRAM)
}

// CampaignEstimateRunsOrg is CampaignEstimateRuns against an explicit
// memory organization.
func CampaignEstimateRunsOrg(layer int, runs []batch.Run, plan fault.Plan, width int, org Organization) ([]CorpusEstimate, error) {
	eng, err := batch.New(orgBatchConfig(layer, width, plan, org))
	if err != nil {
		return nil, err
	}
	res, err := eng.EstimateAll(runs)
	if err != nil {
		return nil, err
	}
	out := make([]CorpusEstimate, len(res))
	for i, r := range res {
		out[i] = CorpusEstimate{Layer: layer, Cycles: r.Cycles, EnergyJ: r.EnergyJ, Errors: r.Errors, Retries: r.Retries}
	}
	return out, nil
}

// CampaignEstimate is CampaignEstimateRuns over the deterministic
// campaign corpus for (seed, runs, n).
func CampaignEstimate(layer int, seed uint64, runs, n int, plan fault.Plan, width int) ([]CorpusEstimate, error) {
	return CampaignEstimateRuns(layer, CampaignRuns(seed, runs, n), plan, width)
}

// CampaignEstimateSerialRuns is the serial reference for a pre-built
// campaign: one kernel-driven run at a time, exactly the pre-batching
// path.
func CampaignEstimateSerialRuns(layer int, runs []batch.Run, plan fault.Plan) ([]CorpusEstimate, error) {
	return CampaignEstimateSerialRunsOrg(layer, runs, plan, OrgSRAM)
}

// CampaignEstimateSerialRunsOrg is the serial reference against an
// explicit memory organization.
func CampaignEstimateSerialRunsOrg(layer int, runs []batch.Run, plan fault.Plan, org Organization) ([]CorpusEstimate, error) {
	var char gatepower.CharTable
	if layer > 0 {
		char = sharedCharTable()
	}
	out := make([]CorpusEstimate, 0, len(runs))
	for _, run := range runs {
		row, err := runLayerFaultMap(layer, run.Items, char, newOrgFaultMap(org, plan))
		if err != nil {
			return nil, err
		}
		out = append(out, CorpusEstimate{Layer: layer, Cycles: row.Cycles, EnergyJ: row.energyJ, Errors: row.Errors, Retries: row.Retries})
	}
	return out, nil
}

// CampaignEstimateSerial is CampaignEstimateSerialRuns over the
// deterministic campaign corpus for (seed, runs, n).
func CampaignEstimateSerial(layer int, seed uint64, runs, n int, plan fault.Plan) ([]CorpusEstimate, error) {
	return CampaignEstimateSerialRuns(layer, CampaignRuns(seed, runs, n), plan)
}

// CampaignEqual reports whether two campaign results are bit-identical,
// run for run — the check the CLI tables print alongside the timings.
func CampaignEqual(a, b []CorpusEstimate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Cycles != b[i].Cycles || a[i].Errors != b[i].Errors || a[i].Retries != b[i].Retries ||
			math.Float64bits(a[i].EnergyJ) != math.Float64bits(b[i].EnergyJ) {
			return false
		}
	}
	return true
}

// BatchCampaignRuns is the campaign size of the CLI batch tables; the
// CLIs cap the requested lane width here rather than truncating runs.
const BatchCampaignRuns = 48

// BatchTable measures the serial path against the batched engine on a
// whole-corpus campaign — the Table-3-style before/after of batching —
// and verifies per-run bit-equality between the two.
func BatchTable(width int) (string, error) {
	const n, seed = 256, 42
	runs := BatchCampaignRuns
	var sb strings.Builder
	fmt.Fprintf(&sb, "Batched corpus estimation: %d runs x %d transactions, lane width %d\n",
		runs, n, width)
	fmt.Fprintf(&sb, "%-18s %12s %13s %9s %7s\n", "Model", "serial[ms]", "batched[ms]", "speedup", "equal")
	names := []string{"Gate-level model", "Layer one model"}
	corpus := CampaignRuns(seed, runs, n)
	for layer := 0; layer <= 1; layer++ {
		// Both passes consume a pristine clone of the same corpus, built
		// outside the timed window: the comparison times estimation, not
		// stimulus generation (identical on both sides by construction).
		serialRuns, batchedRuns := CloneRuns(corpus), CloneRuns(corpus)
		t0 := time.Now()
		serial, err := CampaignEstimateSerialRuns(layer, serialRuns, fault.Plan{})
		if err != nil {
			return "", err
		}
		serMs := float64(time.Since(t0).Microseconds()) / 1e3
		t1 := time.Now()
		batched, err := CampaignEstimateRuns(layer, batchedRuns, fault.Plan{}, width)
		if err != nil {
			return "", err
		}
		batMs := float64(time.Since(t1).Microseconds()) / 1e3
		if !CampaignEqual(serial, batched) {
			return "", fmt.Errorf("bench: layer-%d batched campaign diverged from serial", layer)
		}
		fmt.Fprintf(&sb, "%-18s %12.2f %13.2f %8.1fx %7v\n",
			names[layer], serMs, batMs, serMs/batMs, true)
	}
	return sb.String(), nil
}

// CampaignTable runs a fault-plan campaign through the batched engine
// and renders one summary row per plan — jcexplore's batched corpus
// estimation under its fault axis.
func CampaignTable(layer, width int, planNames []string) (string, error) {
	if len(planNames) == 0 {
		planNames = []string{"none"}
	}
	const n, seed = 256, 42
	runs := BatchCampaignRuns
	var sb strings.Builder
	fmt.Fprintf(&sb, "Batched campaign: layer %d, %d runs x %d transactions, lane width %d\n",
		layer, runs, n, width)
	fmt.Fprintf(&sb, "%-8s %10s %12s %14s %8s %8s %9s\n",
		"Plan", "wall[ms]", "cycles", "energy[pJ]", "errors", "retries", "kT/s")
	for _, name := range planNames {
		plan, ok := fault.Named(name)
		if !ok {
			return "", fmt.Errorf("bench: unknown fault plan %q (have %v)", name, fault.Names)
		}
		t0 := time.Now()
		ests, err := CampaignEstimate(layer, seed, runs, n, plan, width)
		if err != nil {
			return "", err
		}
		wall := time.Since(t0)
		var cycles uint64
		var energy float64
		var errors, retries int
		for _, e := range ests {
			cycles += e.Cycles
			energy += e.EnergyJ
			errors += e.Errors
			retries += e.Retries
		}
		fmt.Fprintf(&sb, "%-8s %10.2f %12d %14.1f %8d %8d %9.0f\n",
			name, float64(wall.Microseconds())/1e3, cycles, energy*1e12, errors, retries,
			float64(runs*n)/wall.Seconds()/1e3)
	}
	return sb.String(), nil
}
