// Cluster serving benchmarks (BENCH_8): cached-hit replay throughput
// of the estimation service, single node vs a two-node cluster. Every
// timed request replays an already-computed result — single-node from
// the local LRU, two-node from whichever tier answers first (local
// hit, or one peer fetch that then seeds the local cache) — so the
// figures isolate the serving/routing overhead the cluster layer adds
// on the hot path, reported as ests/s.
package repro

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

// benchSwap lets an httptest.Server start (and yield its URL) before
// the cluster.Node that will serve it exists.
type benchSwap struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *benchSwap) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *benchSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	if h == nil {
		http.Error(w, "node not ready", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// startBenchNodes brings up count estimation nodes: one plain server
// for count == 1 (the ecserved no-peers deployment), a full-mesh
// cluster otherwise. Returns the base URLs.
func startBenchNodes(b *testing.B, count int) []string {
	b.Helper()
	if count == 1 {
		srv := serve.New(serve.Options{})
		ht := httptest.NewServer(srv.Handler())
		b.Cleanup(func() { ht.Close(); srv.Close() })
		return []string{ht.URL}
	}
	swaps := make([]*benchSwap, count)
	hts := make([]*httptest.Server, count)
	urls := make([]string, count)
	for i := range swaps {
		swaps[i] = &benchSwap{}
		hts[i] = httptest.NewServer(swaps[i])
		urls[i] = hts[i].URL
	}
	var nodes []*cluster.Node
	var srvs []*serve.Server
	for i := 0; i < count; i++ {
		srv := serve.New(serve.Options{})
		srvs = append(srvs, srv)
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		n := cluster.New(srv, cluster.Options{
			Self:          urls[i],
			Peers:         peers,
			ProbeInterval: time.Hour, // membership is static here
		})
		nodes = append(nodes, n)
		swaps[i].set(n.Handler())
	}
	b.Cleanup(func() {
		for _, n := range nodes {
			n.Close()
		}
		for _, ht := range hts {
			ht.Close()
		}
		for _, s := range srvs {
			s.Close()
		}
	})
	return urls
}

func postCached(client *http.Client, url string, body []byte) error {
	resp, err := client.Post(url+"/v1/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, payload)
	}
	return nil
}

// benchClusterCached warms one estimate key on every node, then times
// b.N replays round-robined across the nodes.
func benchClusterCached(b *testing.B, count int) {
	urls := startBenchNodes(b, count)
	client := &http.Client{Timeout: 30 * time.Second}
	body := []byte(`{"layer":1,"corpus":"perf","n":128}`)
	for _, u := range urls { // compute once, seed every local cache
		if err := postCached(client, u, body); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := postCached(client, urls[i%len(urls)], body); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "ests/s")
}

func BenchmarkClusterCached_SingleNode(b *testing.B) { benchClusterCached(b, 1) }
func BenchmarkClusterCached_TwoNode(b *testing.B)    { benchClusterCached(b, 2) }
