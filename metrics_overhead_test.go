package repro

import (
	"testing"

	"repro/internal/ecbus"
	"repro/internal/gatepower"
	"repro/internal/metrics"
)

// The observability layer's disabled state is a nil *Registry: every
// hook is a nil-receiver no-op, so an uninstrumented-feeling hot path
// is the contract, not an aspiration. These benchmarks put the exact
// per-cycle disabled-path call (the layer-0 Post-observer energy
// sample) on top of the Observe_Dense worst case, and the test pins
// the overhead: zero allocations, and within 2% of the plain
// Observe_Dense time per op.

// benchObserveDense is BenchmarkObserve_Dense plus the per-cycle
// metrics hooks against the given registry (nil = disabled), wired the
// way the bus models wire them: the counter hooks sit in the tick path
// unconditionally as nil-receiver calls, while the energy-sampling
// observer (which reads the meter) is only registered for an enabled
// registry.
func benchObserveDense(b *testing.B, reg *metrics.Registry) {
	est := gatepower.NewEstimator(gatepower.DefaultConfig())
	var w ecbus.Bundle
	sample := func() {}
	if reg.Enabled() {
		sample = func() { reg.EnergySample(metrics.PhaseReadData, 0, est.TotalEnergy()) }
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flip := ^uint64(0) * uint64(i&1)
		for id := ecbus.SignalID(0); id < ecbus.NumSignals; id++ {
			w.Set(id, flip)
		}
		est.Observe(&w)
		reg.Beat()
		reg.WaitCycle()
		sample()
	}
}

func BenchmarkObserve_DenseMetricsDisabled(b *testing.B) {
	benchObserveDense(b, nil)
}

func BenchmarkObserve_DenseMetricsEnabled(b *testing.B) {
	reg := metrics.New("L0")
	reg.BindSlaves("fast", "slow")
	benchObserveDense(b, reg)
}

// TestDisabledMetricsZeroCost asserts the acceptance bound on the
// disabled path: 0 allocs/op, and time/op within 2% of the plain dense
// observation loop. Timing is retried a few times so one scheduler
// hiccup does not fail the build; the alloc bound is exact.
func TestDisabledMetricsZeroCost(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}

	// Every disabled-path hook must be allocation-free (and not crash).
	var reg *metrics.Registry
	if n := testing.AllocsPerRun(1000, func() {
		reg.EnergySample(metrics.PhaseAddress, 1, 1.0)
		reg.Beat()
		reg.Beats(4)
		reg.WaitCycle()
		reg.WaitCycles(2)
		reg.Retries(1)
		reg.TxRejected()
		reg.TxAccepted(0, 1)
		reg.Finalize(2.0)
		reg.RecordKernel(1, 2, 3, 4)
		reg.FaultReadError()
		reg.FaultWriteError()
		reg.FaultCorruption()
		reg.FaultExtraWait(3)
		reg.FaultStretch(2)
		reg.SetMaster("m")
		reg.BindSlaves("a")
	}); n != 0 {
		t.Fatalf("disabled registry allocated %.1f allocs/op", n)
	}

	const tolerance = 1.02
	var baseNs, instNs float64
	for attempt := 0; attempt < 4; attempt++ {
		base := testing.Benchmark(BenchmarkObserve_Dense)
		inst := testing.Benchmark(BenchmarkObserve_DenseMetricsDisabled)
		if inst.AllocsPerOp() != 0 {
			t.Fatalf("disabled metrics path allocates: %d allocs/op", inst.AllocsPerOp())
		}
		baseNs, instNs = float64(base.NsPerOp()), float64(inst.NsPerOp())
		if instNs <= baseNs*tolerance {
			return
		}
	}
	t.Errorf("disabled metrics overhead above 2%%: base %.1f ns/op, instrumented %.1f ns/op",
		baseNs, instNs)
}
