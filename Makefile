GO ?= go

.PHONY: all build test vet race cover fuzz faultsmoke bench verify

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/explore/... ./internal/sim/... ./internal/fault/... ./internal/serve/... ./internal/batch/... ./internal/tlm3/... ./internal/calib/...

# cover enforces per-package coverage floors (70% for metrics, fault
# and checker, the packages carrying the observability contracts).
cover:
	./scripts/cover.sh

# fuzz runs every fuzz target for 10s — the same smoke verify runs.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzPlanParse$$' -fuzztime 10s ./internal/fault/
	$(GO) test -run '^$$' -fuzz '^FuzzWithoutReadErrors$$' -fuzztime 10s ./internal/fault/
	$(GO) test -run '^$$' -fuzz '^FuzzCheckerRules$$' -fuzztime 10s ./internal/checker/

faultsmoke:
	$(GO) run ./cmd/ecbench -fault grind

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1s .

# verify is the pre-merge gate: tier-1 tests, vet, the race gate and a
# one-iteration benchmark smoke. Keep it green before every commit.
verify:
	./scripts/verify.sh
