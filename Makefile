GO ?= go

.PHONY: all build test vet race faultsmoke bench verify

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/explore/... ./internal/sim/... ./internal/fault/...

faultsmoke:
	$(GO) run ./cmd/ecbench -fault grind

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1s .

# verify is the pre-merge gate: tier-1 tests, vet, the race gate and a
# one-iteration benchmark smoke. Keep it green before every commit.
verify:
	./scripts/verify.sh
