// Command ectrace records, replays and converts EC bus transaction
// traces — the paper's §4.1 flow (trace at a lower layer, replay into
// the transaction-level models) plus VCD export for waveform viewers.
//
// Usage:
//
//	ectrace record -o run.trace          # trace the verification corpus on layer 0
//	ectrace replay -layer 2 run.trace    # replay a trace into a TLM layer
//	ectrace vcd -o run.vcd               # dump the layer-0 wires as VCD
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/ecbus"
	"repro/internal/gatepower"
	"repro/internal/mem"
	"repro/internal/rtlbus"
	"repro/internal/sim"
	"repro/internal/tlm1"
	"repro/internal/tlm2"
	"repro/internal/trace"
)

var lay = core.Layout{Fast: 0, Slow: 0x10000}

func newMap() *ecbus.Map {
	return ecbus.MustMap(
		mem.NewRAM("fast", lay.Fast, 0x1000, 0, 0),
		mem.NewRAM("slow", lay.Slow, 0x1000, 1, 2),
	)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ectrace:", err)
	os.Exit(1)
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: ectrace record|replay|vcd [flags]")
		os.Exit(2)
	}
	switch os.Args[1] {
	case "record":
		cmdRecord(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	case "vcd":
		cmdVCD(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "ectrace: unknown subcommand %q\n", os.Args[1])
		os.Exit(2)
	}
}

func cmdRecord(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	out := fs.String("o", "ec.trace", "output trace file")
	seed := fs.Uint64("seed", 0, "use a random corpus with this seed instead of the verification corpus")
	n := fs.Int("n", 500, "random corpus size")
	fs.Parse(args)

	k := sim.New(0)
	b := rtlbus.New(k, newMap())
	rec := trace.NewRecorder(b)
	items := core.VerificationCorpus(lay)
	if *seed != 0 {
		items = core.RandomCorpus(*seed, *n, lay)
	}
	m, cycles := core.RunScript(k, rec, items, 10_000_000)
	if !m.Done() {
		fatal(fmt.Errorf("run did not complete"))
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := trace.Save(f, rec.Records()); err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %d transactions over %d cycles to %s\n",
		len(rec.Records()), cycles, *out)
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	layer := fs.Int("layer", 1, "target layer: 1 or 2")
	energy := fs.Bool("energy", true, "attach the layer's energy model")
	fs.Parse(args)
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("replay needs a trace file"))
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	recs, err := trace.Load(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	// Characterize for the energy model.
	kc := sim.New(0)
	bc := rtlbus.New(kc, newMap())
	est := gatepower.NewEstimator(gatepower.DefaultConfig())
	kc.At(sim.Post, "gp", func(uint64) { est.Observe(bc.Wires()) })
	core.RunScript(kc, bc, core.CharCorpus(lay, 400), 10_000_000)
	char := est.Char()

	k := sim.New(0)
	var bus core.Initiator
	var getE func() float64 = func() float64 { return 0 }
	if *layer == 1 {
		b := tlm1.New(k, newMap())
		if *energy {
			b.AttachPower(tlm1.NewPowerModel(char))
			getE = b.Power().TotalEnergy
		}
		bus = b
	} else {
		b := tlm2.New(k, newMap())
		if *energy {
			b.AttachPower(tlm2.NewPowerModel(char))
			getE = b.Power().TotalEnergy
		}
		bus = b
	}
	m, cycles := core.RunScript(k, bus, trace.Items(recs), 10_000_000)
	if !m.Done() {
		fatal(fmt.Errorf("replay did not complete"))
	}
	fmt.Printf("replayed %d transactions on layer %d: %d cycles, %d errors",
		len(recs), *layer, cycles, m.Errors())
	if *energy {
		fmt.Printf(", %.3f pJ", getE()*1e12)
	}
	fmt.Println()
}

func cmdVCD(args []string) {
	fs := flag.NewFlagSet("vcd", flag.ExitOnError)
	out := fs.String("o", "ec.vcd", "output VCD file")
	fs.Parse(args)

	k := sim.New(0)
	b := rtlbus.New(k, newMap())
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	v := trace.NewVCD(f)
	k.At(sim.Post, "vcd", func(uint64) { v.Observe(b.Wires()) })
	m, cycles := core.RunScript(k, b, core.VerificationCorpus(lay), 10_000_000)
	if !m.Done() {
		fatal(fmt.Errorf("run did not complete"))
	}
	if err := v.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("dumped %d cycles of EC wires to %s\n", cycles, *out)
}
