// Command ecsim assembles a MIPS program, runs it on the full smart-card
// platform at a chosen bus abstraction layer, and reports timing, energy
// and peripheral activity.
//
// Usage:
//
//	ecsim -layer 1 -energy prog.s      # run an assembly file
//	ecsim -demo                        # run the built-in demo program
//	ecsim -layer 0 -energy -demo       # gate-level reference run
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cpu"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/trace"
)

// demo exercises the UART, TRNG, timer and crypto coprocessor.
const demo = `
	lui  $s0, 0x000F          # UART
	li   $t0, 1
	sw   $t0, 0xC($s0)
	li   $t0, 0x52            # 'R'
	sw   $t0, 0x0($s0)

	lui  $s1, 0x000F          # TRNG
	ori  $s1, $s1, 0x0300
	lw   $s2, 0($s1)

	lui  $s4, 0x000F          # crypto
	ori  $s4, $s4, 0x0500
	sw   $s2, 0x00($s4)       # key0 = random
	sw   $zero, 0x04($s4)
	li   $t0, 0x77
	sw   $t0, 0x08($s4)
	sw   $zero, 0x0C($s4)
	li   $t0, 1
	sw   $t0, 0x10($s4)
poll:
	lw   $t1, 0x14($s4)
	andi $t1, $t1, 2
	beq  $t1, $zero, poll
	nop
	lw   $v0, 0x18($s4)
	break
`

func main() {
	layer := flag.Int("layer", 1, "bus abstraction layer: 0 (gate), 1 (cycle accurate), 2 (timed)")
	energy := flag.Bool("energy", true, "attach the layer's energy model")
	icache := flag.Bool("icache", true, "enable the instruction cache")
	maxCycles := flag.Uint64("max-cycles", 10_000_000, "cycle budget")
	useDemo := flag.Bool("demo", false, "run the built-in demo program")
	profileOut := flag.String("profile", "", "write a per-cycle energy profile CSV (layer 1 only)")
	vcdOut := flag.String("vcd", "", "write the EC wires as VCD (layer 0 only)")
	listing := flag.Bool("disasm", false, "print the program disassembly before running")
	flag.Parse()

	src := demo
	if !*useDemo {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: ecsim [-layer N] [-energy] <prog.s> | -demo")
			os.Exit(2)
		}
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecsim:", err)
			os.Exit(1)
		}
		src = string(b)
	}

	words, err := cpu.Assemble(platform.ROMBase, src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ecsim: assemble:", err)
		os.Exit(1)
	}

	if *listing {
		fmt.Print(cpu.DisassembleAll(platform.ROMBase, words))
		fmt.Println()
	}

	p := platform.New(platform.Config{
		Layer:  platform.Layer(*layer),
		Energy: *energy,
		ICache: *icache,
	})
	if err := p.LoadProgram(words, *icache); err != nil {
		fmt.Fprintln(os.Stderr, "ecsim:", err)
		os.Exit(1)
	}

	var profile trace.Profile
	if *profileOut != "" {
		if p.TL1Power() == nil {
			fmt.Fprintln(os.Stderr, "ecsim: -profile needs -layer 1 with energy")
			os.Exit(2)
		}
		p.Kernel.At(sim.Post, "profile", func(uint64) {
			profile.Add(p.TL1Power().EnergyLastCycle())
		})
	}
	var vcd *trace.VCDWriter
	if *vcdOut != "" {
		wires := p.Wires()
		if wires == nil {
			fmt.Fprintln(os.Stderr, "ecsim: -vcd needs -layer 0")
			os.Exit(2)
		}
		f, err := os.Create(*vcdOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		vcd = trace.NewVCD(f)
		p.Kernel.At(sim.Post, "vcd", func(uint64) { vcd.Observe(wires) })
	}

	cycles, halted := p.Run(*maxCycles)

	fmt.Printf("layer:          %v\n", p.Layer)
	fmt.Printf("cycles:         %d (halted: %v)\n", cycles, halted)
	if err := p.CPU.Fault(); err != nil {
		fmt.Printf("FAULT:          %v\n", err)
	}
	st := p.CPU.Stats()
	fmt.Printf("instructions:   %d (%.2f cycles/instr)\n", st.Instructions,
		float64(cycles)/float64(max(st.Instructions, 1)))
	fmt.Printf("loads/stores:   %d/%d, bus fetches: %d\n", st.Loads, st.Stores, st.Fetches)
	if hits, misses := p.CPU.ICacheStats(); hits+misses > 0 {
		fmt.Printf("icache:         %d hits, %d misses\n", hits, misses)
	}
	fmt.Printf("$v0:            %#x\n", p.CPU.Reg(2))
	if len(p.UART.TxLog) > 0 {
		fmt.Printf("uart tx:        %q\n", p.UART.TxLog)
	}
	if *energy {
		fmt.Printf("bus energy:     %.3f pJ\n", p.BusEnergy()*1e12)
		fmt.Printf("periph energy:  %.3f pJ\n", p.PeripheralEnergy()*1e12)
		fmt.Printf("crypto engine:  %.3f pJ\n", p.Crypto.TraceEnergy()*1e12)
		fmt.Printf("total:          %.3f pJ\n", p.TotalEnergy()*1e12)
		bd := p.EnergyBreakdown()
		names := make([]string, 0, len(bd))
		for n := range bd {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if bd[n] > 0 {
				fmt.Printf("  %-10s %10.3f pJ\n", n, bd[n]*1e12)
			}
		}
	}

	if *profileOut != "" {
		f, err := os.Create(*profileOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecsim:", err)
			os.Exit(1)
		}
		if err := profile.WriteCSV(f); err == nil {
			err = f.Close()
			fmt.Printf("profile:        %d samples, peak %.3f pJ/cycle -> %s\n",
				len(profile.Samples), profile.Peak()*1e12, *profileOut)
		} else {
			f.Close()
			fmt.Fprintln(os.Stderr, "ecsim:", err)
		}
	}
	if vcd != nil {
		if err := vcd.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ecsim: vcd:", err)
		} else {
			fmt.Printf("vcd:            %s\n", *vcdOut)
		}
	}
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
