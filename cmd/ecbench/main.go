// Command ecbench regenerates the paper's evaluation artifacts from live
// simulations: Table 1 (timing error), Table 2 (energy estimation
// error), Table 3 (simulation performance), Figure 6 (layer-2 energy
// sampling) and the §4.3 Java Card exploration.
//
// Usage:
//
//	ecbench              # everything
//	ecbench -table 2     # one table
//	ecbench -figure 6    # the sampling figure
//	ecbench -explore     # the case-study sweep only
//	ecbench -explore -layer 1,2,3  # sweep a chosen layer list (3 = analytic)
//	ecbench -fault grind # the fault-robustness table only (plans: none, flaky, storm, grind)
//	ecbench -tear tear-early,tear-mid,tear-late  # card-tear session grid (plans × strategies)
//	ecbench -journal word-eager,page-lazy        # restrict the tear grid's strategy axis
//	ecbench -metrics     # per-layer metrics breakdown + clean-vs-fault diff (plan from -fault, default storm)
//	ecbench -batch 64    # serial-vs-batched corpus estimation table at this lane width
//	ecbench -n 200000    # transactions per Table-3 measurement
//	ecbench -workers 1   # serial exploration sweep (default: one per CPU)
//	ecbench -progress    # stream sweep rows to stderr as configs finish
//	ecbench -cpuprofile cpu.prof -memprofile mem.prof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/batch"
	"repro/internal/bench"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/platform"
)

// tearNamesForGrid maps explore's canonical axis spellings (where
// "none" folds to "") back to the grid vocabulary, which spells the
// inactive cell out as "none".
func tearNamesForGrid(names []string) []string {
	out := make([]string, 0, len(names))
	for _, n := range names {
		if n == "" {
			n = "none"
		}
		out = append(out, n)
	}
	return out
}

func main() {
	table := flag.Int("table", 0, "print only table 1, 2 or 3")
	figure := flag.Int("figure", 0, "print only figure 6")
	exploreOnly := flag.Bool("explore", false, "print only the case-study exploration")
	layerSpec := flag.String("layer", "", "comma-separated exploration sweep layers (valid: "+explore.LayerVocab()+"); empty = 1,2")
	faultPlan := flag.String("fault", "", "print only the fault-robustness table for this plan (none, flaky, storm, grind)")
	tearSpec := flag.String("tear", "", "print only the card-tear session grid for these comma-separated plans (none, tear-early, tear-mid, tear-late)")
	journalSpec := flag.String("journal", "", "journaling strategies for the card-tear grid (none, word-eager, word-lazy, page-eager, page-lazy); implies the grid")
	metricsOn := flag.Bool("metrics", false, "print the per-layer metrics report; diffs clean vs the -fault plan (default storm)")
	batchN := flag.Int("batch", 0, "print only the serial-vs-batched corpus table at this lane width (1..64)")
	n := flag.Int("n", 100000, "transactions per Table-3 measurement run")
	workers := flag.Int("workers", 0, "exploration sweep workers; 0 = one per CPU")
	progress := flag.Bool("progress", false, "stream exploration rows to stderr as they complete")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	// Validate the fault plan before any table runs: a typo must exit
	// non-zero up front with the valid vocabulary, not after minutes of
	// simulation (and never degrade to a clean run). ParseNames also
	// redirects card-tear plan names to the -tear axis.
	if *faultPlan != "" {
		if _, err := fault.ParseNames(*faultPlan); err != nil {
			fmt.Fprintln(os.Stderr, "ecbench:", err)
			os.Exit(2)
		}
	}

	// The tear grid's vocabularies get the same up-front treatment.
	var tearPlans, tearStrategies []string
	if *tearSpec != "" {
		names, err := explore.ParseTears(*tearSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecbench:", err)
			os.Exit(2)
		}
		tearPlans = tearNamesForGrid(names)
	}
	if *journalSpec != "" {
		names, err := explore.ParseJournals(*journalSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecbench:", err)
			os.Exit(2)
		}
		tearStrategies = tearNamesForGrid(names)
	}
	tearGrid := *tearSpec != "" || *journalSpec != ""

	// Same up-front discipline for the exploration layer list: reject
	// an unknown layer before any table spends minutes simulating.
	exploreLayers := []int{1, 2}
	if *layerSpec != "" {
		parsed, err := explore.ParseLayers(*layerSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecbench:", err)
			os.Exit(2)
		}
		exploreLayers = parsed
	}

	// Same up-front discipline for the lane width: reject nonsense now,
	// cap oversized (but valid) widths at the campaign size with a note.
	if *batchN < 0 || *batchN > batch.MaxWidth {
		fmt.Fprintf(os.Stderr, "ecbench: invalid -batch %d (valid widths: 1..%d)\n",
			*batchN, batch.MaxWidth)
		os.Exit(2)
	}
	if *batchN > bench.BatchCampaignRuns {
		fmt.Fprintf(os.Stderr, "ecbench: capping -batch %d to the campaign size %d\n",
			*batchN, bench.BatchCampaignRuns)
		*batchN = bench.BatchCampaignRuns
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ecbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ecbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ecbench:", err)
			}
		}()
	}

	all := *table == 0 && *figure == 0 && !*exploreOnly && *faultPlan == "" && !*metricsOn &&
		*batchN == 0 && !tearGrid

	if all || *table == 1 {
		_, text := bench.Table1()
		fmt.Println(text)
	}
	if all || *table == 2 {
		_, text := bench.Table2()
		fmt.Println(text)
	}
	if all || *table == 3 {
		_, text := bench.Table3(*n)
		fmt.Println(text)
	}
	if all || *figure == 6 {
		fmt.Println(bench.Figure6())
	}
	if *faultPlan != "" && !*metricsOn {
		_, text, err := bench.FaultTable(*faultPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecbench:", err)
			os.Exit(2)
		}
		fmt.Println(text)
	}
	if *metricsOn {
		plan := *faultPlan
		if plan == "" {
			plan = "storm"
		}
		text, err := bench.MetricsReport(plan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecbench:", err)
			os.Exit(2)
		}
		fmt.Println(text)
	}
	if *batchN > 0 {
		text, err := bench.BatchTable(*batchN)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecbench:", err)
			os.Exit(1)
		}
		fmt.Println(text)
	}
	if tearGrid {
		text, err := bench.TearTable(platform.Layer1, tearPlans, tearStrategies)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecbench:", err)
			os.Exit(1)
		}
		fmt.Println(text)
	}
	if all || *exploreOnly {
		opts := explore.SweepOpts{Workers: *workers}
		if *progress {
			opts.OnResult = func(r explore.Result, err error) {
				if err != nil {
					fmt.Fprintf(os.Stderr, "ecbench: %v\n", err)
					return
				}
				fmt.Fprint(os.Stderr, explore.Row(r))
			}
		}
		text, err := bench.ExplorationLayers(opts, exploreLayers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecbench:", err)
			os.Exit(1)
		}
		fmt.Println(text)
	}
}
