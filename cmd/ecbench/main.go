// Command ecbench regenerates the paper's evaluation artifacts from live
// simulations: Table 1 (timing error), Table 2 (energy estimation
// error), Table 3 (simulation performance), Figure 6 (layer-2 energy
// sampling) and the §4.3 Java Card exploration.
//
// Usage:
//
//	ecbench              # everything
//	ecbench -table 2     # one table
//	ecbench -figure 6    # the sampling figure
//	ecbench -explore     # the case-study sweep only
//	ecbench -n 200000    # transactions per Table-3 measurement
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	table := flag.Int("table", 0, "print only table 1, 2 or 3")
	figure := flag.Int("figure", 0, "print only figure 6")
	exploreOnly := flag.Bool("explore", false, "print only the case-study exploration")
	n := flag.Int("n", 100000, "transactions per Table-3 measurement run")
	flag.Parse()

	all := *table == 0 && *figure == 0 && !*exploreOnly

	if all || *table == 1 {
		_, text := bench.Table1()
		fmt.Println(text)
	}
	if all || *table == 2 {
		_, text := bench.Table2()
		fmt.Println(text)
	}
	if all || *table == 3 {
		_, text := bench.Table3(*n)
		fmt.Println(text)
	}
	if all || *figure == 6 {
		fmt.Println(bench.Figure6())
	}
	if all || *exploreOnly {
		text, err := bench.Exploration()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ecbench:", err)
			os.Exit(1)
		}
		fmt.Println(text)
	}
}
