package main

import (
	"bufio"
	"context"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/serve"
)

// TestServerSmoke is the end-to-end serving gate: build the daemon,
// start it on a random port, run one estimate through the wire and
// assert it is bit-equal to a direct in-process run, then drain it
// with SIGTERM and require a clean exit.
func TestServerSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon binary")
	}
	bin := filepath.Join(t.TempDir(), "ecserved")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	reaped := false
	defer func() {
		if !reaped {
			cmd.Process.Kill()
			<-done
		}
	}()

	// The first line announces the picked port.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line: %v", sc.Err())
	}
	line := sc.Text()
	i := strings.Index(line, "http://")
	if i < 0 {
		t.Fatalf("startup line %q has no address", line)
	}
	base := strings.TrimSpace(line[i:])
	go func() { // keep the pipe drained so the daemon never blocks on stdout
		for sc.Scan() {
		}
	}()

	client := &serve.Client{BaseURL: base}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := client.Healthz(ctx); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never became healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}

	req := serve.EstimateRequest{Layer: 1, Corpus: "perf", N: 64, Fault: "flaky"}
	got, verdict, err := client.Estimate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if verdict != "miss" {
		t.Fatalf("first estimate verdict %q, want miss", verdict)
	}

	plan, err := fault.Parse("flaky")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := bench.RunCorpusEstimate(1, "perf", 64, plan)
	if err != nil {
		t.Fatal(err)
	}
	if got.EnergyBits != serve.EnergyBits(direct.EnergyJ) {
		t.Fatalf("served energy bits %s != direct %s", got.EnergyBits, serve.EnergyBits(direct.EnergyJ))
	}
	if got.Cycles != direct.Cycles || got.Retries != direct.Retries {
		t.Fatalf("served %+v != direct %+v", got, direct)
	}

	// Same request again is a cache hit with the identical payload.
	again, verdict, err := client.Estimate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if verdict != "hit" || again != got {
		t.Fatalf("repeat estimate: verdict %q, equal=%v", verdict, again == got)
	}

	// SIGTERM drains cleanly: exit code 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		reaped = true
		if err != nil {
			t.Fatalf("daemon exited uncleanly: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}
