// Command ecserved is the estimation service daemon: it serves the
// hierarchical bus models over HTTP/JSON with a content-addressed
// result cache, request dedup and bounded-queue backpressure.
//
// Usage:
//
//	ecserved                      # listen on 127.0.0.1:8372
//	ecserved -addr 127.0.0.1:0    # random port, printed on stdout
//	ecserved -workers 4 -queue 8  # 4 compute workers, queue depth 8
//	ecserved -cache 512           # cap the result cache at 512 entries
//	ecserved -timeout 30s         # default per-request compute deadline
//
// Multi-node serving: pass the other nodes' base URLs via -peers to
// join a cluster. Requests are routed to each content address's owner
// (rendezvous hashing), results are shared through a two-tier cache
// (local LRU, then peer fetch), and exhaustive sweeps are distributed
// work-stealing style across every live node:
//
//	ecserved -addr 127.0.0.1:8372 -peers http://127.0.0.1:8373
//	ecserved -addr 127.0.0.1:8373 -peers http://127.0.0.1:8372
//
// -self overrides the advertised URL when the listen address is not
// how peers reach this node; -probe tunes the health-probe interval.
//
// Endpoints: POST /v1/estimate, POST /v1/sweep, POST /v1/batch,
// POST /v1/config, GET /v1/jobs/{id}, GET /v1/jobs/{id}/result,
// GET /healthz, GET /metricz.
//
// SIGINT/SIGTERM drains gracefully: in-flight jobs finish and are
// delivered, new work is refused with 503.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8372", "listen address; port 0 picks a random free port")
	workers := flag.Int("workers", 0, "compute workers; 0 = one per CPU")
	queue := flag.Int("queue", 0, "job queue depth; 0 = 2x workers")
	cache := flag.Int("cache", 0, "result cache capacity in entries; 0 = 1024")
	timeout := flag.Duration("timeout", 0, "default per-request compute deadline; 0 = 1m")
	sweepWorkers := flag.Int("sweep-workers", 0, "workers inside each sweep job; 0 = one per CPU")
	peers := flag.String("peers", "", "comma-separated peer base URLs; non-empty joins a cluster")
	self := flag.String("self", "", "advertised base URL of this node; default http://<listen addr>")
	probe := flag.Duration("probe", 0, "peer health-probe interval; 0 = 250ms")
	flag.Parse()

	if err := run(*addr, serve.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		DefaultTimeout: *timeout,
		SweepWorkers:   *sweepWorkers,
	}, *peers, *self, *probe); err != nil {
		fmt.Fprintln(os.Stderr, "ecserved:", err)
		os.Exit(1)
	}
}

// splitPeers parses the -peers flag into a clean URL list.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func run(addr string, opts serve.Options, peers, self string, probe time.Duration) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := serve.New(opts)
	handler := srv.Handler()

	var node *cluster.Node
	if peerList := splitPeers(peers); len(peerList) > 0 {
		if self == "" {
			self = "http://" + ln.Addr().String()
		}
		node = cluster.New(srv, cluster.Options{
			Self:          self,
			Peers:         peerList,
			ProbeInterval: probe,
		})
		handler = node.Handler()
		fmt.Printf("ecserved: cluster node %s, %d peer(s), version %s\n",
			self, len(peerList), cluster.VersionTag())
	}
	hs := &http.Server{Handler: handler}

	// The actual address matters when the caller asked for port 0; the
	// smoke test and scripts scrape it from this line.
	fmt.Printf("ecserved: listening on http://%s\n", ln.Addr())

	errc := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		if node != nil {
			node.Close()
		}
		srv.Close()
		return err
	case sig := <-sigc:
		fmt.Printf("ecserved: %v, draining\n", sig)
	}

	// Stop accepting connections first, then drain the compute queue so
	// every accepted job's response is flushed before exit.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	shutdownErr := hs.Shutdown(ctx)
	if node != nil {
		node.Close()
	}
	srv.Close()
	if err := <-errc; err != nil {
		return err
	}
	if shutdownErr != nil {
		return shutdownErr
	}
	fmt.Println("ecserved: drained, bye")
	return nil
}
