// Command jcexplore runs the paper's §4.3 case study: HW/SW interface
// exploration for the Java Card VM's hardware operand stack, sweeping
// SFR organization, address map and bus abstraction layer.
//
// Usage:
//
//	jcexplore                 # full sweep, table + Pareto frontier
//	jcexplore -layer 2        # only the timed layer (fastest)
//	jcexplore -layer 1,2,3    # include the analytic layer-3 rows
//	jcexplore -fidelity confirm  # screen analytically, prune, confirm survivors
//	jcexplore -fidelity screen   # analytic predictions only (microseconds/config)
//	jcexplore -workload wallet
//	jcexplore -faults none,flaky  # add fault-plan sweep axis
//	jcexplore -arb none,rr    # add arbitration-policy sweep axis (multi-master)
//	jcexplore -tear none,tear-mid -journal none,word-eager  # card-tear × journaling axes
//	jcexplore -batch 64 -layer 1  # batched corpus campaign instead of the sweep
//	jcexplore -report         # per-configuration metrics breakdown after the tables
//	jcexplore -workers 1      # serial sweep (default: one worker per CPU)
//	jcexplore -progress       # stream rows to stderr as configs finish
//	jcexplore -cpuprofile cpu.prof -memprofile mem.prof
//	jcexplore -remote http://127.0.0.1:8372  # run the sweep on an ecserved instance
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/batch"
	"repro/internal/bench"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/javacard"
	"repro/internal/metrics"
	"repro/internal/serve"
)

func main() {
	layerSpec := flag.String("layer", "", "comma-separated bus layers to sweep (valid: "+explore.LayerVocab()+"); empty = 1,2. With -batch: the single batched layer (0 or 1)")
	fidelity := flag.String("fidelity", "", "sweep fidelity: exhaustive (default), screen (analytic predictions only) or confirm (screen, prune, confirm survivors exactly)")
	workload := flag.String("workload", "", "restrict to one workload (arith-loop, stack-churn, wallet)")
	faults := flag.String("faults", "", "comma-separated fault plans as an extra sweep axis (none, flaky, storm, grind)")
	arbSpec := flag.String("arb", "", "comma-separated arbitration policies as an extra sweep axis (none, fixed, rr)")
	tearSpec := flag.String("tear", "", "comma-separated card-tear plans as an extra sweep axis (none, tear-early, tear-mid, tear-late)")
	journalSpec := flag.String("journal", "", "comma-separated journaling strategies as an extra sweep axis (none, word-eager, word-lazy, page-eager, page-lazy)")
	batchN := flag.Int("batch", 0, "run the batched corpus campaign at this lane width (1..64) instead of the sweep")
	report := flag.Bool("report", false, "collect per-configuration metrics and print the run-report breakdown")
	workers := flag.Int("workers", 0, "parallel sweep workers; 0 = one per CPU")
	progress := flag.Bool("progress", false, "stream per-configuration rows to stderr as they complete")
	remote := flag.String("remote", "", "comma-separated base URLs of ecserved instances; runs the sweep there instead of in-process, failing over between peers")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jcexplore:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "jcexplore:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jcexplore:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "jcexplore:", err)
			}
		}()
	}

	// Validate the layer list and the fidelity before any pool work: a
	// typo exits 2 with the vocabulary, mirroring the fault-plan
	// validation discipline.
	layers := []int{1, 2}
	if *layerSpec != "" && *batchN == 0 {
		parsed, err := explore.ParseLayers(*layerSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jcexplore:", err)
			os.Exit(2)
		}
		layers = parsed
	}
	fid, err := explore.ParseFidelity(*fidelity)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jcexplore:", err)
		os.Exit(2)
	}
	workloads := javacard.Workloads()
	if *workload != "" {
		var filtered []javacard.Workload
		for _, w := range workloads {
			if w.Name == *workload {
				filtered = append(filtered, w)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "jcexplore: unknown workload %q\n", *workload)
			os.Exit(2)
		}
		workloads = filtered
	}

	var faultNames []string
	if *faults != "" {
		names, err := fault.ParseNames(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jcexplore:", err)
			os.Exit(2)
		}
		faultNames = names
	}

	var arbNames []string
	if *arbSpec != "" {
		names, err := explore.ParseArbs(*arbSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jcexplore:", err)
			os.Exit(2)
		}
		arbNames = names
	}

	var tearNames, journalNames []string
	if *tearSpec != "" {
		names, err := explore.ParseTears(*tearSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jcexplore:", err)
			os.Exit(2)
		}
		tearNames = names
	}
	if *journalSpec != "" {
		names, err := explore.ParseJournals(*journalSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jcexplore:", err)
			os.Exit(2)
		}
		journalNames = names
	}
	// Active tear/journal axes need a timed single-master bus; reject the
	// impossible combinations up front, like the serve endpoints do.
	if activeAxis(tearNames) || activeAxis(journalNames) {
		for _, l := range layers {
			if l != 1 && l != 2 {
				fmt.Fprintf(os.Stderr, "jcexplore: -tear/-journal need timed layers (1, 2); layer %d requested\n", l)
				os.Exit(2)
			}
		}
		if activeAxis(arbNames) {
			fmt.Fprintln(os.Stderr, "jcexplore: -tear/-journal are single-master only; drop -arb")
			os.Exit(2)
		}
	}

	if *batchN != 0 {
		// Batched campaign mode: the bit-parallel engine models layers 0
		// and 1; -layer here names the batched layer directly (default:
		// the TL1 model, jcexplore's home layer).
		if *batchN < 0 || *batchN > batch.MaxWidth {
			fmt.Fprintf(os.Stderr, "jcexplore: invalid -batch %d (valid widths: 1..%d)\n",
				*batchN, batch.MaxWidth)
			os.Exit(2)
		}
		blayer := 1
		if *layerSpec != "" {
			n, err := strconv.Atoi(*layerSpec)
			if err != nil || (n != 0 && n != 1) {
				fmt.Fprintf(os.Stderr, "jcexplore: -batch models layers 0 and 1, not %q\n", *layerSpec)
				os.Exit(2)
			}
			blayer = n
		}
		width := *batchN
		if width > bench.BatchCampaignRuns {
			fmt.Fprintf(os.Stderr, "jcexplore: capping -batch %d to the campaign size %d\n",
				width, bench.BatchCampaignRuns)
			width = bench.BatchCampaignRuns
		}
		text, err := bench.CampaignTable(blayer, width, faultNames)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jcexplore:", err)
			os.Exit(1)
		}
		fmt.Println(text)
		return
	}

	if *remote != "" {
		if *report || *progress {
			fmt.Fprintln(os.Stderr, "jcexplore: -report and -progress are local-only; ignored with -remote")
		}
		results, err := remoteSweep(*remote, fid, layers, workloads, faultNames, arbNames, tearNames, journalNames)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jcexplore:", err)
			os.Exit(1)
		}
		printTables(results, false)
		return
	}

	opts := explore.SweepOpts{Workers: *workers, Metrics: *report, Faults: faultNames, Arbs: arbNames,
		Tears: tearNames, Journals: journalNames}
	if *progress {
		opts.OnResult = func(r explore.Result, err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "jcexplore: %v\n", err)
				return
			}
			fmt.Fprint(os.Stderr, explore.Row(r))
		}
	}

	if fid != explore.FidelityExhaustive {
		runMultiFidelity(fid, opts, layers, workloads, *report)
		return
	}

	results, err := explore.SweepWith(opts, layers, javacard.Organizations, explore.AddrMaps, workloads)
	if err != nil {
		// Partial-failure semantics: report every failed configuration
		// but still print whatever completed.
		fmt.Fprintln(os.Stderr, "jcexplore:", err)
		if len(results) == 0 {
			os.Exit(1)
		}
	}
	printTables(results, *report)
}

// activeAxis reports whether a parsed axis list contains a non-empty
// (active) entry — lists of only "none" spellings stay unrestricted.
func activeAxis(names []string) bool {
	for _, n := range names {
		if n != "" {
			return true
		}
	}
	return false
}

// runMultiFidelity runs the screen or confirm fidelity and prints the
// screened/pruned/confirmed accounting before the tables — pruning is
// never silent.
func runMultiFidelity(fid explore.Fidelity, opts explore.SweepOpts, layers []int, workloads []javacard.Workload, report bool) {
	mfOpts := explore.MultiFidelityOpts{
		SweepOpts:   opts,
		SkipConfirm: fid == explore.FidelityScreen,
	}
	if report {
		mfOpts.Registry = metrics.New("sweep")
	}
	mf, err := explore.SweepMultiFidelity(mfOpts, layers, javacard.Organizations, explore.AddrMaps, workloads)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jcexplore:", err)
		if len(mf.Confirmed) == 0 && len(mf.Screened) == 0 {
			os.Exit(1)
		}
	}
	fmt.Printf("multi-fidelity (%s): screened %d  pruned %d  confirmed %d  screen %.3fms  confirm %.3fms\n",
		fid, mf.ScreenedConfigs, mf.PrunedConfigs, mf.ConfirmedConfigs,
		float64(mf.ScreenTime.Microseconds())/1e3, float64(mf.ConfirmTime.Microseconds())/1e3)
	for _, l := range layers {
		fmt.Printf("  layer %d pruning margin: energy ±%.2f%%  cycles ±%.2f%%\n",
			l, mf.EpsEnergy[l]*100, mf.EpsCycles[l]*100)
	}
	fmt.Println()
	if fid == explore.FidelityScreen {
		fmt.Println("Analytic predictions (screen fidelity; energies are model estimates, not measurements):")
		fmt.Print(predictionTable(mf.Screened))
		return
	}
	printTables(mf.Confirmed, false)
	if report && mfOpts.Registry != nil {
		fmt.Println()
		fmt.Println("Sweep metrics:")
		snap := mfOpts.Registry.Snapshot()
		fmt.Print(snap.Table())
	}
}

// predictionTable renders screening predictions in the exploration
// table's shape, with the pruning decision as the final column.
func predictionTable(preds []explore.Prediction) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-22s %12s %14s %6s\n",
		"workload", "config", "cycles~", "energy[pJ]~", "kept")
	for _, p := range preds {
		kept := "prune"
		if p.Kept {
			kept = "keep"
		}
		fmt.Fprintf(&sb, "%-12s %-22s %12.0f %14.1f %6s\n",
			p.Workload, p.Config.String(), p.Cycles, p.EnergyJ*1e12, kept)
	}
	return sb.String()
}

func printTables(results []explore.Result, report bool) {
	fmt.Println("Java Card VM HW/SW interface exploration (paper 4.3)")
	fmt.Println()
	fmt.Print(explore.Table(results))
	fmt.Println()
	fmt.Println("Pareto frontier (cycles vs bus energy):")
	fmt.Print(explore.Table(explore.Pareto(results)))
	if report {
		fmt.Println()
		fmt.Println("Per-configuration metrics:")
		for _, r := range results {
			if r.Metrics == nil {
				continue
			}
			fmt.Printf("\n%s/%s\n%s", r.Workload, r.Config.String(), r.Metrics.Table())
		}
	}
}

// remoteSweep runs the sweep on an ecserved deployment — a single
// instance or a comma-separated peer list — and converts the NDJSON
// rows back into explore results. With multiple peers the first
// healthy one takes the request and the rest are failover targets; any
// cluster node answers identically (content-addressed routing makes
// the entry node irrelevant), so failover never changes the result.
// Energies come from the exact IEEE-754 bit pattern in the stream, so
// the printed tables are identical to a local run of the same axes.
func remoteSweep(base string, fid explore.Fidelity, layers []int, workloads []javacard.Workload, faultNames, arbNames, tearNames, journalNames []string) ([]explore.Result, error) {
	req := serve.SweepRequest{Layers: layers, Faults: faultNames, Arbs: arbNames,
		Tears: tearNames, Journals: journalNames, Fidelity: string(fid)}
	for _, w := range workloads {
		req.Workloads = append(req.Workloads, w.Name)
	}
	var peers []string
	for _, p := range strings.Split(base, ",") {
		if p = strings.TrimSpace(strings.TrimRight(p, "/")); p != "" {
			peers = append(peers, p)
		}
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("no remote peer URLs in %q", base)
	}
	rows, trailer, err := sweepAnyPeer(peers, req)
	if err != nil {
		return nil, err
	}
	return rowsToResults(rows, trailer)
}

// healthy reports whether a peer's /healthz answers 200.
func healthy(base string) bool {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// sweepAnyPeer orders the peers healthy-first and returns the first
// successful sweep, failing over on request errors.
func sweepAnyPeer(peers []string, req serve.SweepRequest) ([]serve.SweepRow, serve.SweepTrailer, error) {
	ordered := make([]string, 0, len(peers))
	var down []string
	for _, p := range peers {
		if len(peers) == 1 || healthy(p) {
			ordered = append(ordered, p)
		} else {
			down = append(down, p)
		}
	}
	ordered = append(ordered, down...) // last resort: maybe healthz lied
	var lastErr error
	for i, p := range ordered {
		if i > 0 {
			fmt.Fprintf(os.Stderr, "jcexplore: failing over to %s (%v)\n", p, lastErr)
		}
		client := &serve.Client{BaseURL: p}
		rows, trailer, err := client.Sweep(context.Background(), req)
		if err == nil {
			return rows, trailer, nil
		}
		lastErr = err
	}
	return nil, serve.SweepTrailer{}, fmt.Errorf("all %d remote peer(s) failed; last: %w", len(ordered), lastErr)
}

// rowsToResults converts remote NDJSON rows back into explore results.
func rowsToResults(rows []serve.SweepRow, trailer serve.SweepTrailer) ([]explore.Result, error) {
	for _, msg := range trailer.Errors {
		fmt.Fprintln(os.Stderr, "jcexplore: remote:", msg)
	}
	if trailer.Fidelity != "" {
		fmt.Printf("multi-fidelity (%s): screened %d  pruned %d  confirmed %d\n\n",
			trailer.Fidelity, trailer.Screened, trailer.Pruned, trailer.Confirmed)
	}
	results := make([]explore.Result, 0, len(rows))
	for _, row := range rows {
		org, ok := serve.OrgByName(row.Org)
		if !ok {
			return nil, fmt.Errorf("remote row has unknown organization %q", row.Org)
		}
		energy, err := serve.EnergyFromBits(row.EnergyBits)
		if err != nil {
			return nil, err
		}
		var recovery float64
		if row.RecoveryBits != "" {
			if recovery, err = serve.EnergyFromBits(row.RecoveryBits); err != nil {
				return nil, err
			}
		}
		results = append(results, explore.Result{
			Config: explore.Config{
				Layer:   row.Layer,
				Org:     org,
				AddrMap: row.AddrMap,
				Fault:   row.Fault,
				Arb:     row.Arb,
				Tear:    row.Tear,
				Journal: row.Journal,
			},
			Workload:     row.Workload,
			Cycles:       row.Cycles,
			BusEnergyJ:   energy,
			Transactions: row.Tx,
			Retries:      row.Retries,
			Steps:        row.Steps,
			Torn:         row.Torn,
			CutCycle:     row.CutCycle,
			RecoveryJ:    recovery,
		})
	}
	return results, nil
}
