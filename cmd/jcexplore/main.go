// Command jcexplore runs the paper's §4.3 case study: HW/SW interface
// exploration for the Java Card VM's hardware operand stack, sweeping
// SFR organization, address map and bus abstraction layer.
//
// Usage:
//
//	jcexplore                 # full sweep, table + Pareto frontier
//	jcexplore -layer 2        # only the timed layer (fastest)
//	jcexplore -workload wallet
//	jcexplore -faults none,flaky  # add fault-plan sweep axis
//	jcexplore -batch 64 -layer 1  # batched corpus campaign instead of the sweep
//	jcexplore -report         # per-configuration metrics breakdown after the tables
//	jcexplore -workers 1      # serial sweep (default: one worker per CPU)
//	jcexplore -progress       # stream rows to stderr as configs finish
//	jcexplore -cpuprofile cpu.prof -memprofile mem.prof
//	jcexplore -remote http://127.0.0.1:8372  # run the sweep on an ecserved instance
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/batch"
	"repro/internal/bench"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/javacard"
	"repro/internal/serve"
)

func main() {
	layer := flag.Int("layer", 0, "restrict to one bus layer (1 or 2); 0 = both")
	workload := flag.String("workload", "", "restrict to one workload (arith-loop, stack-churn, wallet)")
	faults := flag.String("faults", "", "comma-separated fault plans as an extra sweep axis (none, flaky, storm, grind)")
	batchN := flag.Int("batch", 0, "run the batched corpus campaign at this lane width (1..64) instead of the sweep")
	report := flag.Bool("report", false, "collect per-configuration metrics and print the run-report breakdown")
	workers := flag.Int("workers", 0, "parallel sweep workers; 0 = one per CPU")
	progress := flag.Bool("progress", false, "stream per-configuration rows to stderr as they complete")
	remote := flag.String("remote", "", "base URL of an ecserved instance; runs the sweep there instead of in-process")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jcexplore:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "jcexplore:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "jcexplore:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "jcexplore:", err)
			}
		}()
	}

	layers := []int{1, 2}
	if *layer != 0 {
		layers = []int{*layer}
	}
	workloads := javacard.Workloads()
	if *workload != "" {
		var filtered []javacard.Workload
		for _, w := range workloads {
			if w.Name == *workload {
				filtered = append(filtered, w)
			}
		}
		if len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "jcexplore: unknown workload %q\n", *workload)
			os.Exit(2)
		}
		workloads = filtered
	}

	var faultNames []string
	if *faults != "" {
		names, err := fault.ParseNames(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jcexplore:", err)
			os.Exit(2)
		}
		faultNames = names
	}

	if *batchN != 0 {
		// Batched campaign mode: the bit-parallel engine models layers 0
		// and 1; -layer here names the batched layer directly (default:
		// the TL1 model, jcexplore's home layer).
		if *batchN < 0 || *batchN > batch.MaxWidth {
			fmt.Fprintf(os.Stderr, "jcexplore: invalid -batch %d (valid widths: 1..%d)\n",
				*batchN, batch.MaxWidth)
			os.Exit(2)
		}
		blayer := 1
		if *layer != 0 {
			blayer = *layer
		}
		if blayer != 0 && blayer != 1 {
			fmt.Fprintf(os.Stderr, "jcexplore: -batch models layers 0 and 1, not %d\n", blayer)
			os.Exit(2)
		}
		width := *batchN
		if width > bench.BatchCampaignRuns {
			fmt.Fprintf(os.Stderr, "jcexplore: capping -batch %d to the campaign size %d\n",
				width, bench.BatchCampaignRuns)
			width = bench.BatchCampaignRuns
		}
		text, err := bench.CampaignTable(blayer, width, faultNames)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jcexplore:", err)
			os.Exit(1)
		}
		fmt.Println(text)
		return
	}

	if *remote != "" {
		if *report || *progress {
			fmt.Fprintln(os.Stderr, "jcexplore: -report and -progress are local-only; ignored with -remote")
		}
		results, err := remoteSweep(*remote, layers, workloads, faultNames)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jcexplore:", err)
			os.Exit(1)
		}
		printTables(results, false)
		return
	}

	opts := explore.SweepOpts{Workers: *workers, Metrics: *report, Faults: faultNames}
	if *progress {
		opts.OnResult = func(r explore.Result, err error) {
			if err != nil {
				fmt.Fprintf(os.Stderr, "jcexplore: %v\n", err)
				return
			}
			fmt.Fprint(os.Stderr, explore.Row(r))
		}
	}
	results, err := explore.SweepWith(opts, layers, javacard.Organizations, explore.AddrMaps, workloads)
	if err != nil {
		// Partial-failure semantics: report every failed configuration
		// but still print whatever completed.
		fmt.Fprintln(os.Stderr, "jcexplore:", err)
		if len(results) == 0 {
			os.Exit(1)
		}
	}
	printTables(results, *report)
}

func printTables(results []explore.Result, report bool) {
	fmt.Println("Java Card VM HW/SW interface exploration (paper 4.3)")
	fmt.Println()
	fmt.Print(explore.Table(results))
	fmt.Println()
	fmt.Println("Pareto frontier (cycles vs bus energy):")
	fmt.Print(explore.Table(explore.Pareto(results)))
	if report {
		fmt.Println()
		fmt.Println("Per-configuration metrics:")
		for _, r := range results {
			if r.Metrics == nil {
				continue
			}
			fmt.Printf("\n%s/%s\n%s", r.Workload, r.Config.String(), r.Metrics.Table())
		}
	}
}

// remoteSweep runs the sweep on an ecserved instance and converts the
// NDJSON rows back into explore results. Energies come from the exact
// IEEE-754 bit pattern in the stream, so the printed tables are
// identical to a local run of the same axes.
func remoteSweep(base string, layers []int, workloads []javacard.Workload, faultNames []string) ([]explore.Result, error) {
	req := serve.SweepRequest{Layers: layers, Faults: faultNames}
	for _, w := range workloads {
		req.Workloads = append(req.Workloads, w.Name)
	}
	client := &serve.Client{BaseURL: base}
	rows, trailer, err := client.Sweep(context.Background(), req)
	if err != nil {
		return nil, err
	}
	for _, msg := range trailer.Errors {
		fmt.Fprintln(os.Stderr, "jcexplore: remote:", msg)
	}
	results := make([]explore.Result, 0, len(rows))
	for _, row := range rows {
		org, ok := serve.OrgByName(row.Org)
		if !ok {
			return nil, fmt.Errorf("remote row has unknown organization %q", row.Org)
		}
		energy, err := serve.EnergyFromBits(row.EnergyBits)
		if err != nil {
			return nil, err
		}
		results = append(results, explore.Result{
			Config: explore.Config{
				Layer:   row.Layer,
				Org:     org,
				AddrMap: row.AddrMap,
				Fault:   row.Fault,
			},
			Workload:     row.Workload,
			Cycles:       row.Cycles,
			BusEnergyJ:   energy,
			Transactions: row.Tx,
			Retries:      row.Retries,
			Steps:        row.Steps,
		})
	}
	return results, nil
}
